#include "graph/bisection.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vsync::graph
{

std::size_t
cutSize(const Graph &g, const std::vector<int> &side)
{
    VSYNC_ASSERT(side.size() == g.size(), "partition size mismatch");
    std::size_t cut = 0;
    for (const Edge &e : g.undirectedEdges())
        if (side[e.src] != side[e.dst])
            ++cut;
    return cut;
}

Bisection
exactBisection(const Graph &g)
{
    const std::size_t n = g.size();
    VSYNC_ASSERT(n >= 2, "bisection of graph with < 2 nodes");
    // C(24,12) ~ 2.7M subsets is the practical ceiling for exhaustive
    // enumeration; larger graphs must use the Kernighan-Lin heuristic.
    VSYNC_ASSERT(n <= 24, "exactBisection limited to n <= 24, got %zu", n);

    const std::size_t half = n / 2;
    const auto undirected = g.undirectedEdges();

    Bisection best;
    best.cutWidth = std::numeric_limits<std::size_t>::max();
    best.exact = true;

    // Enumerate subsets of size `half` via the classic combination walk.
    std::vector<int> pick(half);
    std::iota(pick.begin(), pick.end(), 0);
    std::vector<int> side(n);
    while (true) {
        std::fill(side.begin(), side.end(), 0);
        for (int v : pick)
            side[v] = 1;
        std::size_t cut = 0;
        for (const Edge &e : undirected)
            if (side[e.src] != side[e.dst])
                ++cut;
        if (cut < best.cutWidth) {
            best.cutWidth = cut;
            best.side = side;
        }
        // Advance to the next combination.
        int i = static_cast<int>(half) - 1;
        while (i >= 0 &&
               pick[i] == static_cast<int>(n - half) + i) {
            --i;
        }
        if (i < 0)
            break;
        ++pick[i];
        for (std::size_t j = i + 1; j < half; ++j)
            pick[j] = pick[j - 1] + 1;
    }
    return best;
}

namespace
{

/**
 * One Kernighan-Lin refinement pass: repeatedly swap the best
 * (gain-maximal) unlocked pair across the partition, then keep the best
 * prefix of swaps. Returns true when the pass improved the cut.
 */
bool
klPass(const Graph &g, std::vector<int> &side)
{
    const std::size_t n = g.size();
    // D[v] = external cost - internal cost of v under `side`.
    auto compute_d = [&](std::vector<double> &d) {
        std::fill(d.begin(), d.end(), 0.0);
        for (const Edge &e : g.undirectedEdges()) {
            const double w = 1.0;
            if (side[e.src] != side[e.dst]) {
                d[e.src] += w;
                d[e.dst] += w;
            } else {
                d[e.src] -= w;
                d[e.dst] -= w;
            }
        }
    };

    std::vector<double> d(n);
    compute_d(d);
    std::vector<bool> locked(n, false);
    std::vector<std::pair<CellId, CellId>> swaps;
    std::vector<double> gains;

    const std::size_t pairs = n / 2;
    for (std::size_t step = 0; step < pairs; ++step) {
        // Pick the best unlocked pair (a in side 0, b in side 1).
        double best_gain = -std::numeric_limits<double>::infinity();
        CellId best_a = invalidId, best_b = invalidId;
        for (CellId a = 0; static_cast<std::size_t>(a) < n; ++a) {
            if (locked[a] || side[a] != 0)
                continue;
            for (CellId b = 0; static_cast<std::size_t>(b) < n; ++b) {
                if (locked[b] || side[b] != 1)
                    continue;
                double gain = d[a] + d[b];
                if (g.connected(a, b))
                    gain -= 2.0;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        if (best_a == invalidId)
            break;
        locked[best_a] = locked[best_b] = true;
        swaps.emplace_back(best_a, best_b);
        gains.push_back(best_gain);
        // Tentatively apply the swap and refresh D for unlocked nodes.
        side[best_a] = 1;
        side[best_b] = 0;
        compute_d(d);
    }

    // Find the prefix of swaps with the maximum cumulative gain.
    double best_total = 0.0, run = 0.0;
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < gains.size(); ++k) {
        run += gains[k];
        if (run > best_total) {
            best_total = run;
            best_k = k + 1;
        }
    }
    // Undo the swaps beyond the best prefix.
    for (std::size_t k = gains.size(); k > best_k; --k) {
        const auto &[a, b] = swaps[k - 1];
        side[a] = 0;
        side[b] = 1;
    }
    return best_total > 0.0;
}

} // namespace

Bisection
klBisection(const Graph &g, Rng &rng, int restarts)
{
    const std::size_t n = g.size();
    VSYNC_ASSERT(n >= 2, "bisection of graph with < 2 nodes");

    Bisection best;
    best.cutWidth = std::numeric_limits<std::size_t>::max();
    best.exact = false;

    for (int attempt = 0; attempt < restarts; ++attempt) {
        // Random balanced initial partition.
        std::vector<CellId> order(n);
        std::iota(order.begin(), order.end(), 0);
        for (std::size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.uniformInt(i)]);
        std::vector<int> side(n, 0);
        for (std::size_t i = 0; i < n / 2; ++i)
            side[order[i]] = 1;

        // Refine until a pass stops improving (bounded for safety).
        for (int pass = 0; pass < 16 && klPass(g, side); ++pass) {
        }

        const std::size_t cut = cutSize(g, side);
        if (cut < best.cutWidth) {
            best.cutWidth = cut;
            best.side = side;
        }
    }
    return best;
}

Bisection
minimumBisection(const Graph &g, Rng &rng)
{
    if (g.size() <= 20)
        return exactBisection(g);
    return klBisection(g, rng);
}

} // namespace vsync::graph
