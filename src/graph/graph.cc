#include "graph/graph.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace vsync::graph
{

Graph::Graph(std::size_t n) : out(n), in(n)
{
}

CellId
Graph::addNode()
{
    out.emplace_back();
    in.emplace_back();
    return static_cast<CellId>(out.size() - 1);
}

CellId
Graph::addNodes(std::size_t count)
{
    const CellId first = static_cast<CellId>(out.size());
    out.resize(out.size() + count);
    in.resize(in.size() + count);
    return first;
}

EdgeId
Graph::addEdge(CellId src, CellId dst)
{
    VSYNC_ASSERT(src >= 0 && static_cast<std::size_t>(src) < out.size(),
                 "bad edge source %d", src);
    VSYNC_ASSERT(dst >= 0 && static_cast<std::size_t>(dst) < out.size(),
                 "bad edge target %d", dst);
    VSYNC_ASSERT(src != dst, "self loop on node %d", src);
    const EdgeId id = static_cast<EdgeId>(edges.size());
    edges.push_back({src, dst});
    out[src].push_back({dst, id});
    in[dst].push_back({src, id});
    return id;
}

void
Graph::addBidirectional(CellId a, CellId b)
{
    addEdge(a, b);
    addEdge(b, a);
}

std::vector<CellId>
Graph::neighbors(CellId v) const
{
    std::vector<CellId> result;
    for (const Adj &a : out.at(v))
        result.push_back(a.node);
    for (const Adj &a : in.at(v))
        result.push_back(a.node);
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

bool
Graph::connected(CellId a, CellId b) const
{
    for (const Adj &adj : out.at(a))
        if (adj.node == b)
            return true;
    for (const Adj &adj : in.at(a))
        if (adj.node == b)
            return true;
    return false;
}

std::vector<Edge>
Graph::undirectedEdges() const
{
    std::vector<Edge> pairs;
    pairs.reserve(edges.size());
    for (const Edge &e : edges)
        pairs.push_back({std::min(e.src, e.dst), std::max(e.src, e.dst)});
    std::sort(pairs.begin(), pairs.end(), [](const Edge &a, const Edge &b) {
        return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    pairs.erase(std::unique(pairs.begin(), pairs.end(),
                            [](const Edge &a, const Edge &b) {
                                return a.src == b.src && a.dst == b.dst;
                            }),
                pairs.end());
    return pairs;
}

std::size_t
Graph::componentCount() const
{
    std::vector<bool> seen(size(), false);
    std::size_t components = 0;
    for (CellId start = 0; static_cast<std::size_t>(start) < size();
         ++start) {
        if (seen[start])
            continue;
        ++components;
        std::deque<CellId> queue{start};
        seen[start] = true;
        while (!queue.empty()) {
            const CellId v = queue.front();
            queue.pop_front();
            for (CellId w : neighbors(v)) {
                if (!seen[w]) {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    return components;
}

bool
Graph::isConnected() const
{
    return size() > 0 && componentCount() == 1;
}

std::vector<int>
Graph::bfsDistances(CellId src) const
{
    VSYNC_ASSERT(src >= 0 && static_cast<std::size_t>(src) < size(),
                 "bfs from bad node %d", src);
    std::vector<int> dist(size(), -1);
    std::deque<CellId> queue{src};
    dist[src] = 0;
    while (!queue.empty()) {
        const CellId v = queue.front();
        queue.pop_front();
        for (CellId w : neighbors(v)) {
            if (dist[w] < 0) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

} // namespace vsync::graph
