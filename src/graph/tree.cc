#include "graph/tree.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsync::graph
{

RootedTree::RootedTree(std::size_t n)
    : parents(n, invalidId), kids(n)
{
}

NodeId
RootedTree::addNode()
{
    parents.push_back(invalidId);
    kids.emplace_back();
    return static_cast<NodeId>(parents.size() - 1);
}

void
RootedTree::setParent(NodeId child, NodeId parent)
{
    VSYNC_ASSERT(child >= 0 &&
                 static_cast<std::size_t>(child) < parents.size(),
                 "bad child id %d", child);
    VSYNC_ASSERT(parent >= 0 &&
                 static_cast<std::size_t>(parent) < parents.size(),
                 "bad parent id %d", parent);
    VSYNC_ASSERT(parents[child] == invalidId,
                 "node %d already has a parent", child);
    VSYNC_ASSERT(kids[parent].size() < 2,
                 "node %d already has two children (binary tree)", parent);
    // Reject cycles: parent must not be a descendant of child, which is
    // equivalent to child not appearing on parent's root path.
    for (NodeId v = parent; v != invalidId; v = parents[v])
        VSYNC_ASSERT(v != child, "cycle attaching %d under %d",
                     child, parent);
    parents[child] = parent;
    kids[parent].push_back(child);
}

NodeId
RootedTree::root() const
{
    NodeId found = invalidId;
    for (std::size_t v = 0; v < parents.size(); ++v) {
        if (parents[v] == invalidId) {
            VSYNC_ASSERT(found == invalidId,
                         "tree has multiple roots (%d and %zu)", found, v);
            found = static_cast<NodeId>(v);
        }
    }
    VSYNC_ASSERT(found != invalidId, "tree has no root");
    return found;
}

int
RootedTree::depth(NodeId v) const
{
    int d = 0;
    for (NodeId u = parents.at(v); u != invalidId; u = parents[u])
        ++d;
    return d;
}

bool
RootedTree::valid() const
{
    if (parents.empty())
        return false;
    int roots = 0;
    for (std::size_t v = 0; v < parents.size(); ++v) {
        if (parents[v] == invalidId) {
            ++roots;
            continue;
        }
        // Walk up with a step bound to detect cycles.
        std::size_t steps = 0;
        for (NodeId u = static_cast<NodeId>(v); u != invalidId;
             u = parents[u]) {
            if (++steps > parents.size())
                return false;
        }
    }
    return roots == 1;
}

std::vector<int>
RootedTree::subtreeMarkCounts(const std::vector<bool> &marked) const
{
    VSYNC_ASSERT(marked.size() == parents.size(),
                 "mark vector size mismatch");
    std::vector<int> counts(parents.size(), 0);
    // Process nodes in decreasing depth order so children come first.
    std::vector<NodeId> order(parents.size());
    for (std::size_t v = 0; v < parents.size(); ++v)
        order[v] = static_cast<NodeId>(v);
    std::vector<int> depths(parents.size());
    for (std::size_t v = 0; v < parents.size(); ++v)
        depths[v] = depth(static_cast<NodeId>(v));
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return depths[a] > depths[b];
    });
    for (NodeId v : order) {
        counts[v] += marked[v] ? 1 : 0;
        if (parents[v] != invalidId)
            counts[parents[v]] += counts[v];
    }
    return counts;
}

std::vector<NodeId>
RootedTree::subtreeNodes(NodeId v) const
{
    std::vector<NodeId> result;
    std::vector<NodeId> stack{v};
    while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        result.push_back(u);
        for (NodeId c : kids.at(u))
            stack.push_back(c);
    }
    return result;
}

NodeId
RootedTree::nca(NodeId a, NodeId b) const
{
    int da = depth(a), db = depth(b);
    while (da > db) {
        a = parents.at(a);
        --da;
    }
    while (db > da) {
        b = parents.at(b);
        --db;
    }
    while (a != b) {
        a = parents.at(a);
        b = parents.at(b);
    }
    return a;
}

SeparatorEdge
findSeparatorEdge(const RootedTree &tree, const std::vector<bool> &marked)
{
    const auto counts = tree.subtreeMarkCounts(marked);
    const NodeId root = tree.root();
    const int total = counts[root];
    VSYNC_ASSERT(total >= 2, "Lemma 5 needs at least two marked nodes");
    // ceil(2/3 * total): both sides must stay at or below this.
    const int limit = (2 * total + 2) / 3;

    // Find a minimal (deepest along the chosen path) node whose subtree
    // holds more than `limit` marks by descending into heavy children.
    NodeId v = root;
    while (true) {
        NodeId heavy = invalidId;
        int heavy_count = -1;
        for (NodeId c : tree.children(v)) {
            if (counts[c] > heavy_count) {
                heavy_count = counts[c];
                heavy = c;
            }
        }
        if (heavy == invalidId)
            break;
        if (counts[heavy] > limit) {
            v = heavy;
            continue;
        }
        // v is minimal with counts[v] > limit (or v == root): cutting the
        // edge above `heavy` is the Lemma 5 separator.
        SeparatorEdge sep;
        sep.child = heavy;
        sep.insideCount = counts[heavy];
        sep.outsideCount = total - counts[heavy];
        VSYNC_ASSERT(sep.insideCount <= limit && sep.outsideCount <= limit,
                     "separator violates Lemma 5: %d/%d of %d (limit %d)",
                     sep.insideCount, sep.outsideCount, total, limit);
        return sep;
    }
    panic("Lemma 5 separator not found (marks concentrated on one node?)");
}

} // namespace vsync::graph
