/**
 * @file
 * Directed communication graphs (the paper's COMM, assumption A1).
 *
 * Nodes are dense integer ids 0..size()-1; each directed edge represents
 * a wire able to move one data item per cycle from its source cell to its
 * target cell. Undirected queries (neighbour sets, bisection) treat an
 * edge and its reverse as a single connection.
 */

#ifndef VSYNC_GRAPH_GRAPH_HH
#define VSYNC_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vsync::graph
{

/** Identifier of an edge within a Graph. */
using EdgeId = std::int32_t;

/** A directed edge between two cells. */
struct Edge
{
    CellId src = invalidId;
    CellId dst = invalidId;
};

/** An adjacency entry: neighbour node plus the edge that reaches it. */
struct Adj
{
    CellId node;
    EdgeId edge;
};

/**
 * A directed graph with dense node ids.
 *
 * The structure is append-only: nodes and edges can be added but not
 * removed, which keeps ids stable across the layout and clock-tree
 * machinery built on top.
 */
class Graph
{
  public:
    Graph() = default;

    /** Construct with @p n isolated nodes. */
    explicit Graph(std::size_t n);

    /** Add one node; returns its id. */
    CellId addNode();

    /** Add @p count nodes; returns the id of the first. */
    CellId addNodes(std::size_t count);

    /**
     * Add a directed edge.
     *
     * @pre both endpoints exist and src != dst.
     * @return the new edge's id.
     */
    EdgeId addEdge(CellId src, CellId dst);

    /** Add edges in both directions between @p a and @p b. */
    void addBidirectional(CellId a, CellId b);

    /** Number of nodes. */
    std::size_t size() const { return out.size(); }

    /** Number of directed edges. */
    std::size_t edgeCount() const { return edges.size(); }

    /** The edge with id @p e. */
    const Edge &edge(EdgeId e) const { return edges.at(e); }

    /** All directed edges. */
    const std::vector<Edge> &allEdges() const { return edges; }

    /** Outgoing adjacency of node @p v. */
    const std::vector<Adj> &outEdges(CellId v) const { return out.at(v); }

    /** Incoming adjacency of node @p v. */
    const std::vector<Adj> &inEdges(CellId v) const { return in.at(v); }

    /**
     * Undirected neighbour set of @p v (each neighbour once, even if
     * connected by edges in both directions).
     */
    std::vector<CellId> neighbors(CellId v) const;

    /** True if an edge a->b or b->a exists. */
    bool connected(CellId a, CellId b) const;

    /**
     * Unique undirected connections as (min, max) pairs. This is the
     * edge set the skew analysis iterates over: skew between two
     * communicating cells does not depend on data direction.
     */
    std::vector<Edge> undirectedEdges() const;

    /** Number of connected components (ignoring edge direction). */
    std::size_t componentCount() const;

    /** True when the graph is connected (and non-empty). */
    bool isConnected() const;

    /**
     * BFS hop distances from @p src over undirected edges;
     * unreachable nodes get -1.
     */
    std::vector<int> bfsDistances(CellId src) const;

  private:
    std::vector<Edge> edges;
    std::vector<std::vector<Adj>> out;
    std::vector<std::vector<Adj>> in;
};

} // namespace vsync::graph

#endif // VSYNC_GRAPH_GRAPH_HH
