#include "graph/topology.hh"

#include "common/logging.hh"

namespace vsync::graph
{

CellId
Topology::at(int c, int r) const
{
    for (std::size_t i = 0; i < coords.size(); ++i)
        if (coords[i][0] == c && coords[i][1] == r)
            return static_cast<CellId>(i);
    return invalidId;
}

Topology
linearArray(int n)
{
    VSYNC_ASSERT(n >= 1, "linear array needs n >= 1, got %d", n);
    Topology t;
    t.kind = TopologyKind::Linear;
    t.name = csprintf("linear-%d", n);
    t.rows = 1;
    t.cols = n;
    t.graph = Graph(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        t.coords.push_back({i, 0});
    for (int i = 0; i + 1 < n; ++i)
        t.graph.addBidirectional(i, i + 1);
    return t;
}

Topology
ring(int n)
{
    VSYNC_ASSERT(n >= 3, "ring needs n >= 3, got %d", n);
    Topology t = linearArray(n);
    t.kind = TopologyKind::Ring;
    t.name = csprintf("ring-%d", n);
    t.graph.addBidirectional(n - 1, 0);
    return t;
}

namespace
{

/** Shared mesh/torus generator. */
Topology
gridTopology(int rows, int cols, bool wrap)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "grid needs positive dims");
    Topology t;
    t.kind = wrap ? TopologyKind::Torus : TopologyKind::Mesh;
    t.name = csprintf("%s-%dx%d", wrap ? "torus" : "mesh", rows, cols);
    t.rows = rows;
    t.cols = cols;
    t.graph = Graph(static_cast<std::size_t>(rows) * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.coords.push_back({c, r});
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                t.graph.addBidirectional(id(r, c), id(r, c + 1));
            else if (wrap && cols > 2)
                t.graph.addBidirectional(id(r, c), id(r, 0));
            if (r + 1 < rows)
                t.graph.addBidirectional(id(r, c), id(r + 1, c));
            else if (wrap && rows > 2)
                t.graph.addBidirectional(id(r, c), id(0, c));
        }
    }
    return t;
}

} // namespace

Topology
mesh(int rows, int cols)
{
    return gridTopology(rows, cols, false);
}

Topology
torus(int rows, int cols)
{
    return gridTopology(rows, cols, true);
}

Topology
hexArray(int rows, int cols)
{
    VSYNC_ASSERT(rows >= 1 && cols >= 1, "hex array needs positive dims");
    Topology t;
    t.kind = TopologyKind::Hex;
    t.name = csprintf("hex-%dx%d", rows, cols);
    t.rows = rows;
    t.cols = cols;
    t.graph = Graph(static_cast<std::size_t>(rows) * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.coords.push_back({c, r});
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                t.graph.addBidirectional(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                t.graph.addBidirectional(id(r, c), id(r + 1, c));
            // Axial diagonal: (c, r) <-> (c + 1, r - 1).
            if (c + 1 < cols && r > 0)
                t.graph.addBidirectional(id(r, c), id(r - 1, c + 1));
        }
    }
    return t;
}

Topology
completeBinaryTree(int levels)
{
    VSYNC_ASSERT(levels >= 1 && levels < 31, "bad tree levels %d", levels);
    const int n = (1 << levels) - 1;
    Topology t;
    t.kind = TopologyKind::BinaryTree;
    t.name = csprintf("btree-%d", levels);
    t.rows = levels;
    t.cols = 1 << (levels - 1);
    t.graph = Graph(static_cast<std::size_t>(n));
    // Logical coordinates: column = in-order index, row = depth.
    t.coords.assign(static_cast<std::size_t>(n), {0, 0});
    int next_column = 0;
    // Iterative in-order traversal to assign columns.
    std::vector<std::pair<int, int>> stack; // (node, state)
    stack.emplace_back(0, 0);
    while (!stack.empty()) {
        auto &[node, state] = stack.back();
        const int left = 2 * node + 1;
        const int right = 2 * node + 2;
        if (state == 0) {
            state = 1;
            if (left < n)
                stack.emplace_back(left, 0);
        } else if (state == 1) {
            state = 2;
            int depth = 0;
            for (int v = node; v > 0; v = (v - 1) / 2)
                ++depth;
            t.coords[node] = {next_column++, depth};
            if (right < n)
                stack.emplace_back(right, 0);
        } else {
            stack.pop_back();
        }
    }
    for (int i = 0; i < n; ++i) {
        const int left = 2 * i + 1;
        const int right = 2 * i + 2;
        if (left < n)
            t.graph.addBidirectional(i, left);
        if (right < n)
            t.graph.addBidirectional(i, right);
    }
    return t;
}

namespace
{

/** Near-square grid coordinates for index-addressed graphs. */
void
gridPlaceByIndex(Topology &t, int n)
{
    int cols = 1;
    while (cols * cols < n)
        ++cols;
    t.cols = cols;
    t.rows = (n + cols - 1) / cols;
    for (int v = 0; v < n; ++v)
        t.coords.push_back({v % cols, v / cols});
}

} // namespace

Topology
shuffleExchange(int k)
{
    VSYNC_ASSERT(k >= 2 && k < 20, "bad shuffle-exchange order %d", k);
    const int n = 1 << k;
    Topology t;
    t.kind = TopologyKind::ShuffleExchange;
    t.name = csprintf("shuffle-exchange-%d", k);
    t.graph = Graph(static_cast<std::size_t>(n));
    gridPlaceByIndex(t, n);
    for (int v = 0; v < n; ++v) {
        // Exchange: flip the low bit (add each pair once).
        if ((v & 1) == 0)
            t.graph.addBidirectional(v, v ^ 1);
        // Shuffle: left-rotate the k-bit address.
        const int shuffled =
            ((v << 1) | (v >> (k - 1))) & (n - 1);
        if (shuffled != v)
            t.graph.addEdge(v, shuffled);
    }
    return t;
}

Topology
hypercube(int k)
{
    VSYNC_ASSERT(k >= 1 && k < 20, "bad hypercube order %d", k);
    const int n = 1 << k;
    Topology t;
    t.kind = TopologyKind::Hypercube;
    t.name = csprintf("hypercube-%d", k);
    t.graph = Graph(static_cast<std::size_t>(n));
    const int half = k / 2;
    const int cols = 1 << (k - half);
    t.cols = cols;
    t.rows = 1 << half;
    for (int v = 0; v < n; ++v)
        t.coords.push_back({v & (cols - 1), v >> (k - half)});
    for (int v = 0; v < n; ++v)
        for (int bit = 0; bit < k; ++bit)
            if ((v & (1 << bit)) == 0)
                t.graph.addBidirectional(v, v | (1 << bit));
    return t;
}

} // namespace vsync::graph
