/**
 * @file
 * Rooted binary trees and the paper's Lemma 5 edge separator.
 *
 * Lemma 5: for any subset M of at least two nodes of a binary tree there
 * is an edge whose removal leaves two subtrees, each containing no more
 * than two-thirds of the nodes in M. This is the first step of the
 * Section V-B lower-bound proof, applied to the clock tree CLK with M =
 * the array's cells.
 */

#ifndef VSYNC_GRAPH_TREE_HH
#define VSYNC_GRAPH_TREE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace vsync::graph
{

/**
 * A rooted tree with at most two children per node, stored as a parent
 * array. Node ids are dense 0..size()-1.
 */
class RootedTree
{
  public:
    RootedTree() = default;

    /** Construct with @p n nodes, all unattached (parent = invalidId). */
    explicit RootedTree(std::size_t n);

    /** Add a node; returns its id. */
    NodeId addNode();

    /**
     * Attach @p child under @p parent.
     *
     * @pre child currently has no parent; parent has < 2 children;
     *      no cycle is formed (checked by walking to the root).
     */
    void setParent(NodeId child, NodeId parent);

    /** Number of nodes. */
    std::size_t size() const { return parents.size(); }

    /** Parent of @p v (invalidId for a root). */
    NodeId parent(NodeId v) const { return parents.at(v); }

    /** Children of @p v (0, 1 or 2 entries). */
    const std::vector<NodeId> &children(NodeId v) const
    {
        return kids.at(v);
    }

    /** The unique root. @pre exactly one node has no parent. */
    NodeId root() const;

    /** Depth of @p v (root has depth 0). */
    int depth(NodeId v) const;

    /** True when every node leads up to a single root without cycles. */
    bool valid() const;

    /**
     * Number of marked nodes in each node's subtree.
     *
     * @param marked per-node flags (size == size()).
     * @return per-node subtree counts.
     */
    std::vector<int> subtreeMarkCounts(const std::vector<bool> &marked)
        const;

    /** Nodes in the subtree rooted at @p v (including v). */
    std::vector<NodeId> subtreeNodes(NodeId v) const;

    /** Nearest common ancestor of @p a and @p b. */
    NodeId nca(NodeId a, NodeId b) const;

  private:
    std::vector<NodeId> parents;
    std::vector<std::vector<NodeId>> kids;
};

/** Result of the Lemma 5 separator search. */
struct SeparatorEdge
{
    /** Child endpoint of the separator edge (cut edge = parent->child). */
    NodeId child = invalidId;
    /** Marked nodes inside the child's subtree. */
    int insideCount = 0;
    /** Marked nodes outside the child's subtree. */
    int outsideCount = 0;
};

/**
 * Find an edge of @p tree satisfying Lemma 5 for the marked subset:
 * both sides contain at most ceil(2/3 * M) marked nodes.
 *
 * @pre at least two nodes are marked.
 */
SeparatorEdge findSeparatorEdge(const RootedTree &tree,
                                const std::vector<bool> &marked);

} // namespace vsync::graph

#endif // VSYNC_GRAPH_TREE_HH
