/**
 * @file
 * Generators for the communication topologies studied in the paper:
 * linear arrays (Section V-A), rings, rectangular meshes (Section V-B),
 * tori, hexagonal arrays (Fig 3c; the Kung-Leiserson matmul array) and
 * complete binary trees (Section VIII).
 */

#ifndef VSYNC_GRAPH_TOPOLOGY_HH
#define VSYNC_GRAPH_TOPOLOGY_HH

#include <array>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace vsync::graph
{

/** Which generator produced a Topology. */
enum class TopologyKind
{
    Linear,
    Ring,
    Mesh,
    Torus,
    Hex,
    BinaryTree,
    ShuffleExchange,
    Hypercube,
};

/**
 * A generated communication graph plus the logical coordinates each
 * generator assigns its cells. Logical coordinates are integer grid
 * positions; the layout library maps them to physical placements.
 */
struct Topology
{
    Graph graph;
    /** Logical (column, row) coordinate per cell. */
    std::vector<std::array<int, 2>> coords;
    std::string name;
    TopologyKind kind = TopologyKind::Linear;
    int rows = 0;
    int cols = 0;

    /** Cell id at logical coordinate (c, r); invalidId when absent. */
    CellId at(int c, int r) const;
};

/**
 * A 1-D array of @p n cells; each neighbouring pair is connected in both
 * directions (systolic arrays commonly stream data both ways).
 */
Topology linearArray(int n);

/** A ring of @p n cells (a linear array with a wraparound link). */
Topology ring(int n);

/** An r x c mesh with 4-neighbour bidirectional connectivity. */
Topology mesh(int rows, int cols);

/** An r x c torus (mesh plus wraparound links). */
Topology torus(int rows, int cols);

/**
 * A rhombic hexagonal array of side @p rows x @p cols in axial
 * coordinates with 6-neighbour connectivity: east, west, north, south,
 * north-east and south-west diagonals.
 */
Topology hexArray(int rows, int cols);

/**
 * A complete binary tree with @p levels levels (2^levels - 1 nodes) in
 * heap order: node 0 is the root, children of i are 2i+1 and 2i+2.
 * Edges are bidirectional (queries flow down, results flow up).
 */
Topology completeBinaryTree(int levels);

/**
 * The shuffle-exchange graph on 2^k nodes: exchange edges i <-> i^1
 * and shuffle edges i -> rotate-left_k(i). Its minimum bisection width
 * is Theta(N / log N) -- between the 1-D and 2-D extremes of
 * Theorem 6. Nodes are placed on a near-square grid by index.
 */
Topology shuffleExchange(int k);

/**
 * The k-dimensional hypercube (2^k nodes, bisection width 2^(k-1)):
 * the high-connectivity extreme, where the Theorem 6 area case binds
 * before the cut case. Nodes are placed on a near-square grid: x from
 * the low bits, y from the high bits.
 */
Topology hypercube(int k);

} // namespace vsync::graph

#endif // VSYNC_GRAPH_TOPOLOGY_HH
