/**
 * @file
 * Minimum bisection width computation (Lemma 4 / Theorem 6 substrate).
 *
 * The Section V-B lower bound says sigma = Omega(W(N)) where W(N) is the
 * minimum bisection width of COMM. We compute W exactly for small graphs
 * (subset enumeration) and approximately for larger ones (randomized
 * Kernighan-Lin with refinement passes), which upper-bounds W; for meshes
 * the known Theta(n) value lets tests check the heuristic's quality.
 */

#ifndef VSYNC_GRAPH_BISECTION_HH
#define VSYNC_GRAPH_BISECTION_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace vsync
{
class Rng;
} // namespace vsync

namespace vsync::graph
{

/** Result of a bisection computation. */
struct Bisection
{
    /** Number of undirected edges crossing the partition. */
    std::size_t cutWidth = 0;
    /** side[v] is 0 or 1. */
    std::vector<int> side;
    /** True when produced by exact enumeration. */
    bool exact = false;
};

/**
 * Count undirected edges of @p g crossing the given partition.
 *
 * @param side per-node side assignment (0/1).
 */
std::size_t cutSize(const Graph &g, const std::vector<int> &side);

/**
 * Exact minimum balanced bisection by enumerating all subsets of size
 * floor(n/2). Exponential; intended for n <= ~24.
 */
Bisection exactBisection(const Graph &g);

/**
 * Randomized Kernighan-Lin bisection heuristic.
 *
 * @param g graph to bisect.
 * @param rng randomness source for initial partitions.
 * @param restarts number of random restarts; the best result wins.
 */
Bisection klBisection(const Graph &g, Rng &rng, int restarts = 8);

/**
 * Minimum bisection width: exact when the graph is small enough,
 * otherwise the Kernighan-Lin heuristic (an upper bound on the true
 * width).
 */
Bisection minimumBisection(const Graph &g, Rng &rng);

} // namespace vsync::graph

#endif // VSYNC_GRAPH_BISECTION_HH
