#include "net/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "clocktree/builders.hh"
#include "common/logging.hh"
#include "layout/generators.hh"
#include "obs/metrics.hh"

namespace vsync::net
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Default latency buckets (ms): sub-ms serving to multi-second. */
std::vector<double>
latencyBoundsMs()
{
    return {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};
}

/** write() the whole buffer; false on a dead peer (EPIPE etc.). */
bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

/** Per-connection state shared by its reader and the dispatcher. */
struct ScenarioServer::Connection
{
    int fd = -1;
    /** Serialises writes: reader (error replies) vs dispatcher. */
    std::mutex writeMutex;
    /** The peer vanished; suppress further writes. */
    std::atomic<bool> dead{false};

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** One lazily built scenario: the layout and (for trees) the tree. */
struct ScenarioServer::Scenario
{
    layout::Layout layout;
    clocktree::ClockTree tree;
    bool hasTree = false;
};

ScenarioServer::ScenarioServer(ServerConfig config)
    : cfg(config),
      svc(serve::ServiceConfig{config.computeThreads,
                               config.cacheCapacity, config.metrics})
{
}

ScenarioServer::~ScenarioServer()
{
    stop();
}

bool
ScenarioServer::start()
{
    VSYNC_ASSERT(!started.load(), "ScenarioServer started twice");

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        warn("net: socket() failed: %s", std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
        warn("net: bad listen address '%s'", cfg.host.c_str());
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 128) != 0) {
        warn("net: cannot listen on %s:%u: %s", cfg.host.c_str(),
             unsigned(cfg.port), std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);

    if (::pipe(wakePipe) != 0) {
        warn("net: pipe() failed: %s", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    started.store(true);
    acceptThread = std::thread([this] { acceptLoop(); });
    dispatchThread = std::thread([this] { dispatchLoop(); });
    inform("net: serving on %s:%u", cfg.host.c_str(),
           unsigned(boundPort));
    return true;
}

void
ScenarioServer::wakeThreads()
{
    // One byte, never drained: every poll()er sees POLLIN from now on.
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &b, 1);
}

void
ScenarioServer::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;

    // 1. Refuse new work everywhere, then wake the blocked pollers.
    draining.store(true);
    wakeThreads();
    acceptThread.join();
    {
        std::lock_guard<std::mutex> lock(connMutex);
        for (std::thread &t : connThreads)
            t.join();
        connThreads.clear();
    }

    // 2. Drain: the queue is frozen now (no readers left). Give the
    //    dispatcher cfg.drainSeconds to answer what was admitted.
    {
        std::unique_lock<std::mutex> lock(queueMutex);
        const bool drained = drainCv.wait_for(
            lock,
            std::chrono::duration<double>(cfg.drainSeconds),
            [this] { return queue.empty() && !dispatcherBusy; });
        if (!drained) {
            // 3. Out of patience: the in-flight batch gets cancelled
            //    and the stragglers run with an expired deadline, so
            //    every admitted request still gets its (Partial)
            //    reply -- quickly.
            expireStragglers.store(true);
            lock.unlock();
            svc.cancel();
            lock.lock();
            drainCv.wait(lock, [this] {
                return queue.empty() && !dispatcherBusy;
            });
        }
        dispatcherExit = true;
    }
    queueCv.notify_all();
    dispatchThread.join();

    // 4. Every reply has been written; now the sockets may close.
    {
        std::lock_guard<std::mutex> lock(connMutex);
        connections.clear();
    }
    ::close(listenFd);
    listenFd = -1;
    ::close(wakePipe[0]);
    ::close(wakePipe[1]);
    wakePipe[0] = wakePipe[1] = -1;
    inform("net: server stopped");
}

void
ScenarioServer::acceptLoop()
{
    while (!draining.load()) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {wakePipe[0], POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            warn("net: accept poll failed: %s", std::strerror(errno));
            break;
        }
        if (draining.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("net: accept failed: %s", std::strerror(errno));
            break;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        if (cfg.metrics) {
            cfg.metrics->counter("net.connections.accepted").inc();
            cfg.metrics->gauge("net.connections.active").add(1.0);
        }
        std::lock_guard<std::mutex> lock(connMutex);
        connections.push_back(conn);
        connThreads.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
ScenarioServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    LineReader reader(cfg.maxLineBytes);
    std::string line;
    char chunk[4096];

    const auto fail = [&](const char *why) {
        (void)why;
        conn->dead.store(true);
    };

    while (!draining.load()) {
        pollfd fds[2] = {{conn->fd, POLLIN, 0},
                         {wakePipe[0], POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            fail("poll");
            break;
        }
        if (draining.load())
            break;
        if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            // Peer closed (or error): done reading. Queued requests
            // keep their shared_ptr; late replies hit a dead socket
            // and are dropped by writeLine.
            if (n < 0)
                fail("recv");
            break;
        }
        if (cfg.metrics)
            cfg.metrics->counter("net.bytes.in")
                .inc(static_cast<std::uint64_t>(n));
        reader.feed(chunk, static_cast<std::size_t>(n));

        for (;;) {
            const LineReader::Next ev = reader.next(line);
            if (ev == LineReader::Next::NeedMore)
                break;
            const Clock::time_point arrival = Clock::now();
            if (ev == LineReader::Next::TooLarge) {
                // The line's bytes are already dropped; the reply has
                // no id to echo (the line was never parsed) and the
                // connection survives, resynchronised at the newline.
                if (cfg.metrics)
                    cfg.metrics->counter("net.requests.too_large")
                        .inc();
                writeLine(*conn,
                          encodeError(0, errTooLarge,
                                      "request line exceeds " +
                                          std::to_string(
                                              cfg.maxLineBytes) +
                                          " bytes"));
                continue;
            }

            WireRequest rq;
            std::string error;
            if (line.find_first_not_of(" \t\r") == std::string::npos) {
                // Blank line: ignore (nc users hitting return).
            } else if (!parseRequest(line, rq, error)) {
                if (cfg.metrics)
                    cfg.metrics->counter("net.requests.bad").inc();
                writeLine(*conn, encodeError(rq.id, errBadRequest,
                                             error));
            } else if (rq.kind == QueryKind::Info) {
                // Health ping: answered here on the reader thread, so
                // liveness probes see the truth even when the
                // dispatcher and pool are saturated.
                InfoReply info;
                info.threads = svc.threads();
                info.queueCapacity = cfg.admissionCapacity;
                info.draining = draining.load();
                {
                    std::lock_guard<std::mutex> lock(queueMutex);
                    info.queueDepth = queue.size();
                }
                if (cfg.metrics)
                    cfg.metrics->counter("net.requests.info").inc();
                writeLine(*conn, encodeInfo(rq.id, info));
            } else if (draining.load()) {
                writeLine(*conn, encodeError(rq.id, errShuttingDown,
                                             "server stopping"));
            } else {
                bool admitted = false;
                {
                    std::lock_guard<std::mutex> lock(queueMutex);
                    if (queue.size() < cfg.admissionCapacity) {
                        queue.push_back(Pending{conn, rq, arrival});
                        admitted = true;
                    }
                }
                if (admitted) {
                    queueCv.notify_one();
                    if (cfg.metrics)
                        cfg.metrics->counter("net.requests.accepted")
                            .inc();
                } else {
                    // Shed, loudly: the client learns immediately
                    // instead of waiting on an unbounded queue.
                    if (cfg.metrics)
                        cfg.metrics->counter("net.requests.shed")
                            .inc();
                    writeLine(*conn,
                              encodeError(rq.id, errOverloaded,
                                          "admission queue full"));
                }
            }
        }
    }
    if (cfg.metrics)
        cfg.metrics->gauge("net.connections.active").add(-1.0);
}

void
ScenarioServer::dispatchLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this] {
                return dispatcherExit || !queue.empty();
            });
            if (queue.empty()) {
                VSYNC_ASSERT(dispatcherExit, "spurious dispatch wake");
                return;
            }
            p = std::move(queue.front());
            queue.pop_front();
            dispatcherBusy = true;
        }
        serveOne(p);
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            dispatcherBusy = false;
        }
        drainCv.notify_all();
    }
}

const ScenarioServer::Scenario &
ScenarioServer::scenarioFor(const WireRequest &rq)
{
    const std::tuple<int, int, int> key{static_cast<int>(rq.scheme),
                                        rq.rows, rq.cols};
    auto it = catalog.find(key);
    if (it == catalog.end()) {
        auto sc = std::make_unique<Scenario>();
        sc->layout = layout::meshLayout(rq.rows, rq.cols);
        if (rq.scheme == WireScheme::HTree) {
            sc->tree = clocktree::buildHTreeGrid(sc->layout, rq.rows,
                                                 rq.cols);
            sc->hasTree = true;
        } else if (rq.scheme == WireScheme::Spine) {
            sc->tree = clocktree::buildSpine(sc->layout);
            sc->hasTree = true;
        }
        it = catalog.emplace(key, std::move(sc)).first;
    }
    return *it->second;
}

void
ScenarioServer::serveOne(Pending &p)
{
    const WireRequest &rq = p.rq;
    const Scenario &sc = scenarioFor(rq);

    mc::McConfig mcc;
    mcc.seed = rq.seed;
    mcc.trials = rq.trials;
    mcc.grain = rq.grain;

    std::vector<serve::SweepRequest> batch;
    if (rq.kind == QueryKind::Skew) {
        serve::SkewRequest s;
        s.layout = &sc.layout;
        s.tree = &sc.tree;
        s.delay = rq.delay;
        s.cfg = mcc;
        s.trialOffset = rq.trialOffset;
        batch.emplace_back(s);
    } else {
        serve::ResilienceRequest r;
        r.layout = &sc.layout;
        r.rows = rq.rows;
        r.cols = rq.cols;
        r.kind = rq.scheme == WireScheme::Trix
                     ? mc::DistributionKind::TrixGrid
                     : (rq.scheme == WireScheme::Spine
                            ? mc::DistributionKind::Spine
                            : mc::DistributionKind::HTree);
        r.faultRate = rq.faultRate;
        r.rc.delay = rq.delay;
        r.cfg = mcc;
        r.trialOffset = rq.trialOffset;
        batch.emplace_back(r);
    }

    // The deadline is arrival-relative: queue wait already spent part
    // of it. A non-positive remainder (or a straggler past the drain
    // budget) fails fast inside the service -- empty Partial.
    serve::BatchOptions opts;
    if (rq.deadlineMs < infinity) {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - p.arrival)
                .count();
        opts.deadlineSeconds = rq.deadlineMs / 1e3 - elapsed;
    }
    if (expireStragglers.load())
        opts.deadlineSeconds = 0.0;

    const serve::BatchOutcome out = svc.run(batch, opts);
    VSYNC_ASSERT(out.outcomes.size() == 1,
                 "single-request batch produced %zu outcomes",
                 out.outcomes.size());

    const double serverMs =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  p.arrival)
            .count();
    writeLine(*p.conn, encodeOutcome(rq, out.outcomes[0], serverMs));
    if (cfg.metrics) {
        cfg.metrics->counter("net.requests.completed").inc();
        cfg.metrics
            ->histogram("net.request.latency_ms", latencyBoundsMs())
            .observe(serverMs);
    }
}

void
ScenarioServer::writeLine(Connection &conn, const std::string &line)
{
    if (conn.dead.load())
        return;
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string framed = line;
    framed.push_back('\n');
    if (!sendAll(conn.fd, framed.data(), framed.size())) {
        conn.dead.store(true);
        return;
    }
    if (cfg.metrics)
        cfg.metrics->counter("net.bytes.out")
            .inc(static_cast<std::uint64_t>(framed.size()));
}

} // namespace vsync::net
