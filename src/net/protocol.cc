#include "net/protocol.hh"

#include <charconv>
#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace vsync::net
{

namespace
{

/**
 * A cursor over one line. The scanner understands exactly the JSON
 * subset the protocol emits: one flat object of string keys mapping
 * to strings, numbers, booleans or arrays of numbers. Strings carry
 * no escape sequences (keys and enum values never need them), which
 * keeps scanning a single pass with zero allocation per token.
 */
struct Cursor
{
    const char *p;
    const char *end;

    void
    ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    atEnd()
    {
        ws();
        return p == end;
    }

    bool
    string(std::string_view &out, std::string &error)
    {
        if (!consume('"')) {
            error = "expected '\"'";
            return false;
        }
        const char *start = p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                error = "escape sequences are not part of the protocol";
                return false;
            }
            ++p;
        }
        if (p == end) {
            error = "unterminated string";
            return false;
        }
        out = std::string_view(start, static_cast<std::size_t>(p - start));
        ++p; // closing quote
        return true;
    }

    /** The raw character span of one number literal. */
    bool
    numberToken(std::string_view &out, std::string &error)
    {
        ws();
        const char *start = p;
        while (p < end &&
               (*p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                *p == 'E' || (*p >= '0' && *p <= '9')))
            ++p;
        if (p == start) {
            error = "expected a number";
            return false;
        }
        out = std::string_view(start, static_cast<std::size_t>(p - start));
        return true;
    }

    bool
    boolean(bool &out, std::string &error)
    {
        ws();
        const std::string_view rest(p, static_cast<std::size_t>(end - p));
        if (rest.substr(0, 4) == "true") {
            out = true;
            p += 4;
            return true;
        }
        if (rest.substr(0, 5) == "false") {
            out = false;
            p += 5;
            return true;
        }
        error = "expected a boolean";
        return false;
    }
};

bool
toDouble(std::string_view token, double &out)
{
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), out);
    return res.ec == std::errc() &&
           res.ptr == token.data() + token.size();
}

bool
toU64(std::string_view token, std::uint64_t &out)
{
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), out);
    return res.ec == std::errc() &&
           res.ptr == token.data() + token.size();
}

bool
scanDouble(Cursor &c, double &out, std::string &error)
{
    std::string_view token;
    if (!c.numberToken(token, error))
        return false;
    if (!toDouble(token, out)) {
        error = "malformed number '" + std::string(token) + "'";
        return false;
    }
    return true;
}

bool
scanU64(Cursor &c, std::uint64_t &out, std::string &error)
{
    std::string_view token;
    if (!c.numberToken(token, error))
        return false;
    if (!toU64(token, out)) {
        error = "expected an unsigned integer, got '" +
                std::string(token) + "'";
        return false;
    }
    return true;
}

bool
scanDoubleArray(Cursor &c, std::vector<double> &out, std::string &error)
{
    if (!c.consume('[')) {
        error = "expected '['";
        return false;
    }
    if (c.consume(']'))
        return true;
    for (;;) {
        double v = 0.0;
        if (!scanDouble(c, v, error))
            return false;
        out.push_back(v);
        if (c.consume(','))
            continue;
        if (c.consume(']'))
            return true;
        error = "expected ',' or ']'";
        return false;
    }
}

bool
scanByteArray(Cursor &c, std::vector<std::uint8_t> &out,
              std::string &error)
{
    if (!c.consume('[')) {
        error = "expected '['";
        return false;
    }
    if (c.consume(']'))
        return true;
    for (;;) {
        std::uint64_t v = 0;
        if (!scanU64(c, v, error))
            return false;
        if (v > 1) {
            error = "mask entries must be 0 or 1";
            return false;
        }
        out.push_back(static_cast<std::uint8_t>(v));
        if (c.consume(','))
            continue;
        if (c.consume(']'))
            return true;
        error = "expected ',' or ']'";
        return false;
    }
}

/**
 * Drive the key/value loop of one flat object; @p field is called per
 * key with the cursor positioned at the value and must consume it.
 */
template <typename FieldFn>
bool
scanObject(Cursor &c, std::string &error, const FieldFn &field)
{
    if (!c.consume('{')) {
        error = "expected '{'";
        return false;
    }
    if (!c.consume('}')) {
        for (;;) {
            std::string_view key;
            if (!c.string(key, error))
                return false;
            if (!c.consume(':')) {
                error = "expected ':' after key '" + std::string(key) +
                        "'";
                return false;
            }
            if (!field(key))
                return false;
            if (c.consume(','))
                continue;
            if (c.consume('}'))
                break;
            error = "expected ',' or '}'";
            return false;
        }
    }
    if (!c.atEnd()) {
        error = "trailing bytes after the object";
        return false;
    }
    return true;
}

} // namespace

const char *
queryKindName(QueryKind k)
{
    switch (k) {
    case QueryKind::Skew: return "skew";
    case QueryKind::Resilience: return "resilience";
    case QueryKind::Info: return "info";
    }
    panic("unreachable query kind %d", static_cast<int>(k));
}

const char *
wireSchemeName(WireScheme s)
{
    switch (s) {
    case WireScheme::HTree: return "htree";
    case WireScheme::Spine: return "spine";
    case WireScheme::Trix: return "trix";
    }
    panic("unreachable wire scheme %d", static_cast<int>(s));
}

bool
parseRequest(std::string_view line, WireRequest &out, std::string &error)
{
    out = WireRequest{};
    error.clear();
    bool sawFaultRate = false;
    Cursor c{line.data(), line.data() + line.size()};

    const bool ok = scanObject(c, error, [&](std::string_view key) {
        if (key == "id")
            return scanU64(c, out.id, error);
        if (key == "kind") {
            std::string_view v;
            if (!c.string(v, error))
                return false;
            if (v == "skew")
                out.kind = QueryKind::Skew;
            else if (v == "resilience")
                out.kind = QueryKind::Resilience;
            else if (v == "info")
                out.kind = QueryKind::Info;
            else {
                error = "unknown kind '" + std::string(v) + "'";
                return false;
            }
            return true;
        }
        if (key == "scheme" || key == "dist") {
            std::string_view v;
            if (!c.string(v, error))
                return false;
            if (v == "htree")
                out.scheme = WireScheme::HTree;
            else if (v == "spine")
                out.scheme = WireScheme::Spine;
            else if (v == "trix")
                out.scheme = WireScheme::Trix;
            else {
                error = "unknown scheme '" + std::string(v) + "'";
                return false;
            }
            return true;
        }
        if (key == "rows" || key == "cols") {
            std::uint64_t v = 0;
            if (!scanU64(c, v, error))
                return false;
            if (v < 1 || v > static_cast<std::uint64_t>(maxWireSide)) {
                error = std::string(key) + " outside [1, " +
                        std::to_string(maxWireSide) + "]";
                return false;
            }
            (key == "rows" ? out.rows : out.cols) =
                static_cast<int>(v);
            return true;
        }
        if (key == "fault_rate") {
            sawFaultRate = true;
            if (!scanDouble(c, out.faultRate, error))
                return false;
            if (out.faultRate < 0.0 || out.faultRate > 1.0) {
                error = "fault_rate outside [0, 1]";
                return false;
            }
            return true;
        }
        if (key == "seed")
            return scanU64(c, out.seed, error);
        if (key == "trials") {
            std::uint64_t v = 0;
            if (!scanU64(c, v, error))
                return false;
            if (v < 1 || v > maxWireTrials) {
                error = "trials outside [1, " +
                        std::to_string(maxWireTrials) + "]";
                return false;
            }
            out.trials = v;
            return true;
        }
        if (key == "grain") {
            std::uint64_t v = 0;
            if (!scanU64(c, v, error))
                return false;
            if (v < 1) {
                error = "grain must be >= 1";
                return false;
            }
            out.grain = v;
            return true;
        }
        if (key == "trial_offset") {
            std::uint64_t v = 0;
            if (!scanU64(c, v, error))
                return false;
            // Substream indices are cheap at any magnitude; the bound
            // only keeps offset + trials inside size_t arithmetic.
            if (v > (std::uint64_t{1} << 48)) {
                error = "trial_offset exceeds 2^48";
                return false;
            }
            out.trialOffset = v;
            return true;
        }
        if (key == "m") {
            if (!scanDouble(c, out.delay.m, error))
                return false;
            if (!(out.delay.m > 0.0)) {
                error = "m must be > 0";
                return false;
            }
            return true;
        }
        if (key == "eps") {
            if (!scanDouble(c, out.delay.eps, error))
                return false;
            if (out.delay.eps < 0.0) {
                error = "eps must be >= 0";
                return false;
            }
            return true;
        }
        if (key == "deadline_ms")
            return scanDouble(c, out.deadlineMs, error);
        error = "unknown key '" + std::string(key) + "'";
        return false;
    });
    if (!ok)
        return false;

    // A ping carries no scenario; whatever defaults remain are moot.
    if (out.kind == QueryKind::Info)
        return true;

    if (static_cast<std::size_t>(out.rows) *
            static_cast<std::size_t>(out.cols) >
        maxWireCells) {
        error = "rows*cols exceeds " + std::to_string(maxWireCells) +
                " cells";
        return false;
    }
    if (out.kind == QueryKind::Skew && out.scheme == WireScheme::Trix) {
        error = "trix serves resilience queries only";
        return false;
    }
    if (out.kind == QueryKind::Skew && sawFaultRate) {
        error = "fault_rate is a resilience parameter";
        return false;
    }
    return true;
}

std::string
encodeRequest(const WireRequest &rq)
{
    std::ostringstream os;
    JsonWriter w(os, JsonWriter::Style::Compact);
    w.beginObject()
        .keyValue("id", rq.id)
        .keyValue("kind", queryKindName(rq.kind));
    if (rq.kind == QueryKind::Info) {
        // A ping is just the correlation id and the kind.
        w.endObject();
        return os.str();
    }
    w.keyValue("scheme", wireSchemeName(rq.scheme))
        .keyValue("rows", rq.rows)
        .keyValue("cols", rq.cols);
    if (rq.kind == QueryKind::Resilience)
        w.keyValue("fault_rate", rq.faultRate);
    w.keyValue("seed", rq.seed)
        .keyValue("trials", static_cast<std::uint64_t>(rq.trials))
        .keyValue("grain", static_cast<std::uint64_t>(rq.grain));
    if (rq.trialOffset != 0)
        w.keyValue("trial_offset",
                   static_cast<std::uint64_t>(rq.trialOffset));
    w.keyValue("m", rq.delay.m)
        .keyValue("eps", rq.delay.eps);
    if (rq.deadlineMs < infinity)
        w.keyValue("deadline_ms", rq.deadlineMs);
    w.endObject();
    return os.str();
}

std::string
encodeOutcome(const WireRequest &rq, const serve::RequestOutcome &o,
              double server_ms)
{
    const bool resilience = rq.kind == QueryKind::Resilience;
    const mc::McResult &primary =
        resilience ? o.resilience.maxCommSkew : o.skew;

    std::ostringstream os;
    JsonWriter w(os, JsonWriter::Style::Compact);
    w.beginObject()
        .keyValue("id", rq.id)
        .keyValue("ok", true)
        .keyValue("status", o.status == serve::RequestStatus::Complete
                                ? "complete"
                                : "partial")
        .keyValue("kind", queryKindName(rq.kind))
        .keyValue("trials_done",
                  static_cast<std::uint64_t>(o.trialsDone))
        .keyValue("trials_requested",
                  static_cast<std::uint64_t>(o.trialsRequested));
    if (o.trialsDone > 0) {
        w.keyValue("mean", primary.stat.mean())
            .keyValue("stddev", primary.stat.stddev())
            .keyValue("min", primary.stat.min())
            .keyValue("max", primary.stat.max());
    }
    w.key("samples").beginArray();
    for (const double s : primary.samples)
        w.value(s);
    w.endArray();
    if (resilience) {
        w.key("clocked_samples").beginArray();
        for (const double s : o.resilience.clockedFraction.samples)
            w.value(s);
        w.endArray();
        // Per-trial fault counts ride along so a distributed fold can
        // recombine shards into an exact meanFaults: integer counts
        // sum exactly in doubles, per-shard means do not.
        w.key("fault_samples").beginArray();
        for (const double s : o.faultSamples)
            w.value(s);
        w.endArray();
        w.keyValue("mean_faults", o.resilience.meanFaults);
    }
    if (o.status == serve::RequestStatus::Partial) {
        w.key("trial_done").beginArray();
        for (const std::uint8_t d : o.trialDone)
            w.value(static_cast<std::uint64_t>(d));
        w.endArray();
    }
    w.keyValue("server_ms", server_ms).endObject();
    return os.str();
}

std::string
encodeInfo(std::uint64_t id, const InfoReply &info)
{
    std::ostringstream os;
    JsonWriter w(os, JsonWriter::Style::Compact);
    w.beginObject()
        .keyValue("id", id)
        .keyValue("ok", true)
        .keyValue("kind", "info")
        .keyValue("proto", info.proto)
        .keyValue("threads", info.threads)
        .keyValue("queue_depth", info.queueDepth)
        .keyValue("queue_capacity", info.queueCapacity)
        .keyValue("draining", info.draining)
        .endObject();
    return os.str();
}

std::string
encodeError(std::uint64_t id, std::string_view code,
            std::string_view detail)
{
    std::ostringstream os;
    JsonWriter w(os, JsonWriter::Style::Compact);
    w.beginObject()
        .keyValue("id", id)
        .keyValue("ok", false)
        .keyValue("error", std::string(code));
    if (!detail.empty())
        w.keyValue("detail", std::string(detail));
    w.endObject();
    return os.str();
}

bool
parseResponse(std::string_view line, WireResponse &out,
              std::string &error)
{
    out = WireResponse{};
    error.clear();
    Cursor c{line.data(), line.data() + line.size()};

    return scanObject(c, error, [&](std::string_view key) {
        if (key == "id")
            return scanU64(c, out.id, error);
        if (key == "ok")
            return c.boolean(out.ok, error);
        if (key == "status") {
            std::string_view v;
            if (!c.string(v, error))
                return false;
            if (v != "complete" && v != "partial") {
                error = "unknown status '" + std::string(v) + "'";
                return false;
            }
            out.complete = v == "complete";
            return true;
        }
        if (key == "kind") {
            std::string_view v;
            return c.string(v, error);
        }
        if (key == "error") {
            std::string_view v;
            if (!c.string(v, error))
                return false;
            out.error = std::string(v);
            return true;
        }
        if (key == "detail") {
            std::string_view v;
            if (!c.string(v, error))
                return false;
            out.detail = std::string(v);
            return true;
        }
        if (key == "trials_done")
            return scanU64(c, out.trialsDone, error);
        if (key == "trials_requested")
            return scanU64(c, out.trialsRequested, error);
        if (key == "mean")
            return scanDouble(c, out.mean, error);
        if (key == "stddev")
            return scanDouble(c, out.stddev, error);
        if (key == "min")
            return scanDouble(c, out.minValue, error);
        if (key == "max")
            return scanDouble(c, out.maxValue, error);
        if (key == "mean_faults")
            return scanDouble(c, out.meanFaults, error);
        if (key == "server_ms")
            return scanDouble(c, out.serverMs, error);
        if (key == "samples")
            return scanDoubleArray(c, out.samples, error);
        if (key == "clocked_samples")
            return scanDoubleArray(c, out.clockedSamples, error);
        if (key == "fault_samples")
            return scanDoubleArray(c, out.faultSamples, error);
        if (key == "trial_done")
            return scanByteArray(c, out.trialDone, error);
        if (key == "proto")
            return scanU64(c, out.proto, error);
        if (key == "threads")
            return scanU64(c, out.threads, error);
        if (key == "queue_depth")
            return scanU64(c, out.queueDepth, error);
        if (key == "queue_capacity")
            return scanU64(c, out.queueCapacity, error);
        if (key == "draining")
            return c.boolean(out.draining, error);
        error = "unknown key '" + std::string(key) + "'";
        return false;
    });
}

LineReader::LineReader(std::size_t max_line_bytes) : cap(max_line_bytes)
{
    VSYNC_ASSERT(cap >= 1, "LineReader cap must be >= 1");
}

void
LineReader::feed(const char *data, std::size_t len)
{
    buffer.append(data, len);
}

LineReader::Next
LineReader::next(std::string &line)
{
    for (;;) {
        if (discarding) {
            // Inside an oversized line: throw bytes away until its
            // terminating newline resynchronises the stream. The
            // TooLarge event was already emitted when the cap broke.
            const std::size_t nl = buffer.find('\n');
            if (nl == std::string::npos) {
                dropped += buffer.size();
                buffer.clear();
                return Next::NeedMore;
            }
            dropped += nl + 1;
            buffer.erase(0, nl + 1);
            discarding = false;
            continue;
        }
        const std::size_t nl = buffer.find('\n');
        if (nl == std::string::npos) {
            if (buffer.size() > cap) {
                // The partial line outgrew the cap with no newline in
                // sight: drop it now instead of buffering without
                // limit, and report exactly once.
                ++oversized;
                dropped += buffer.size();
                buffer.clear();
                discarding = true;
                return Next::TooLarge;
            }
            return Next::NeedMore;
        }
        if (nl > cap) {
            // A whole oversized line arrived within one feed.
            ++oversized;
            dropped += nl + 1;
            buffer.erase(0, nl + 1);
            return Next::TooLarge;
        }
        line.assign(buffer, 0, nl);
        buffer.erase(0, nl + 1);
        return Next::Line;
    }
}

} // namespace vsync::net
