#include "net/loadgen.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace vsync::net
{

namespace
{

using Clock = std::chrono::steady_clock;

int
connectTo(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

LoadGenResult
runLoadGen(const LoadGenConfig &cfg)
{
    VSYNC_ASSERT(!cfg.mix.empty(), "LoadGenConfig.mix is empty");
    VSYNC_ASSERT(cfg.offeredRps > 0.0, "offeredRps must be > 0");
    const unsigned nconn = std::max(1u, cfg.connections);

    LoadGenResult res;
    res.offered = cfg.requests;
    res.responses.resize(cfg.requests);
    res.gotReply.assign(cfg.requests, 0);
    if (cfg.requests == 0)
        return res;

    // Request i -> connection i % nconn; ids carry i, so response
    // slots are disjoint across reader threads and need no locks.
    std::vector<int> fds(nconn, -1);
    for (unsigned c = 0; c < nconn; ++c) {
        fds[c] = connectTo(cfg.host, cfg.port);
        if (fds[c] < 0) {
            warn("loadgen: connect to %s:%u failed: %s",
                 cfg.host.c_str(), unsigned(cfg.port),
                 std::strerror(errno));
            for (int fd : fds)
                if (fd >= 0)
                    ::close(fd);
            res.transportOk = false;
            res.lost = cfg.requests;
            return res;
        }
    }

    std::vector<Clock::time_point> sendTime(cfg.requests);
    std::vector<Clock::time_point> recvTime(cfg.requests);
    std::atomic<bool> parseFailed{false};

    const Clock::time_point t0 = Clock::now();
    const Clock::time_point lastSendDue =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(
                     static_cast<double>(cfg.requests - 1) /
                     cfg.offeredRps));
    const Clock::time_point recvDeadline =
        lastSendDue + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              cfg.recvTimeoutSeconds));

    std::vector<std::thread> senders;
    std::vector<std::thread> readers;
    senders.reserve(nconn);
    readers.reserve(nconn);

    for (unsigned c = 0; c < nconn; ++c) {
        // Sender: walk this connection's schedule slice, sleeping to
        // each request's due time -- never waiting for responses.
        senders.emplace_back([&, c] {
            for (std::size_t i = c; i < cfg.requests; i += nconn) {
                const Clock::time_point due =
                    t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(i) /
                                 cfg.offeredRps));
                std::this_thread::sleep_until(due);
                WireRequest rq = cfg.mix[i % cfg.mix.size()];
                rq.id = i;
                std::string line = encodeRequest(rq);
                line.push_back('\n');
                sendTime[i] = Clock::now();
                if (!sendAll(fds[c], line.data(), line.size())) {
                    warn("loadgen: send on connection %u failed", c);
                    return;
                }
            }
        });

        // Reader: collect replies until this connection's share is
        // resolved or the deadline passes.
        readers.emplace_back([&, c] {
            std::size_t expected = 0;
            for (std::size_t i = c; i < cfg.requests; i += nconn)
                ++expected;
            std::string buffer;
            char chunk[4096];
            std::size_t got = 0;
            while (got < expected) {
                const auto remaining =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(recvDeadline -
                                                   Clock::now())
                        .count();
                if (remaining <= 0)
                    return;
                pollfd pfd{fds[c], POLLIN, 0};
                const int pr =
                    ::poll(&pfd, 1, static_cast<int>(remaining));
                if (pr < 0) {
                    if (errno == EINTR)
                        continue;
                    return;
                }
                if (pr == 0)
                    return; // deadline
                const ssize_t n =
                    ::recv(fds[c], chunk, sizeof(chunk), 0);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n <= 0)
                    return; // server closed
                buffer.append(chunk, static_cast<std::size_t>(n));
                std::size_t nl;
                while ((nl = buffer.find('\n')) != std::string::npos) {
                    const std::string_view line(buffer.data(), nl);
                    WireResponse rsp;
                    std::string error;
                    if (!parseResponse(line, rsp, error)) {
                        warn("loadgen: bad response: %s",
                             error.c_str());
                        parseFailed.store(true);
                        return;
                    }
                    const std::uint64_t id = rsp.id;
                    if (id < cfg.requests && !res.gotReply[id]) {
                        recvTime[id] = Clock::now();
                        res.responses[id] = std::move(rsp);
                        res.gotReply[id] = 1;
                        ++got;
                    }
                    buffer.erase(0, nl + 1);
                }
            }
        });
    }
    for (std::thread &t : senders)
        t.join();
    for (std::thread &t : readers)
        t.join();
    for (int fd : fds)
        ::close(fd);

    res.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    res.transportOk = !parseFailed.load();

    std::vector<double> latencies;
    latencies.reserve(cfg.requests);
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        if (!res.gotReply[i]) {
            ++res.lost;
            continue;
        }
        const WireResponse &rsp = res.responses[i];
        if (rsp.ok) {
            ++res.completed;
            // sendTime/recvTime reads are ordered by the joins above.
            latencies.push_back(
                std::chrono::duration<double, std::milli>(
                    recvTime[i] - sendTime[i])
                    .count());
        } else if (rsp.error == errOverloaded) {
            ++res.shed;
        } else {
            ++res.errors;
        }
    }
    res.achievedRps = res.wallSeconds > 0.0
                          ? static_cast<double>(res.completed) /
                                res.wallSeconds
                          : 0.0;
    std::sort(latencies.begin(), latencies.end());
    res.p50Ms = quantile(latencies, 0.50);
    res.p99Ms = quantile(latencies, 0.99);
    return res;
}

} // namespace vsync::net
