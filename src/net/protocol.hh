/**
 * @file
 * Wire protocol of the TCP scenario server.
 *
 * Requests and responses are newline-delimited JSON objects, one per
 * line, so the protocol can be driven by hand with `nc` and parsed
 * with one split. A request names a scenario by its parameters (the
 * server builds the layout and clock tree itself and fetches the
 * compiled kernel through serve::ScenarioCache); a response carries
 * the sweep statistics plus the full per-trial sample vector, doubles
 * rendered by JsonWriter::formatDouble (shortest round-trip), so a
 * client can check the served numbers bit-for-bit against a direct
 * serve::SweepService run -- the property bench_net_throughput gates.
 *
 * The request parser is a small allocation-light recursive-descent
 * scanner over the line (no DOM, no maps); integers are parsed as
 * uint64 directly so 64-bit seeds survive, unlike a double-typed JSON
 * parser. Unknown keys are rejected: at this protocol size they are
 * far more likely typos than extensions.
 *
 * Request lines (defaults in WireRequest):
 *
 *   {"id":1,"kind":"skew","scheme":"htree","rows":8,"cols":8,
 *    "seed":42,"trials":64,"grain":8,"m":0.05,"eps":0.005,
 *    "deadline_ms":100}
 *   {"id":2,"kind":"resilience","scheme":"trix","rows":8,"cols":8,
 *    "fault_rate":0.02,"trials":32}
 *   {"id":3,"kind":"info"}
 *   {"id":4,"kind":"skew","trials":16,"trial_offset":48,...}
 *
 * Success responses echo the id and carry status "complete" or
 * "partial" (with a per-trial done mask); error responses are
 * {"id":..,"ok":false,"error":"overloaded"|"bad_request"|
 * "shutting_down"|"too_large","detail":"..."}. "info" is a
 * lightweight health ping answered off the reader thread;
 * "trial_offset" shifts the request's Rng::forTrial substream
 * indices, the seam the distributed coordinator (src/dist/) shards
 * sweeps through.
 */

#ifndef VSYNC_NET_PROTOCOL_HH
#define VSYNC_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"
#include "core/wire_delay.hh"
#include "serve/sweep_service.hh"

namespace vsync::net
{

/** Which sweep family a request asks for. */
enum class QueryKind
{
    /** Max communicating-pair skew over a healthy clock tree. */
    Skew,
    /** Graceful degradation of a distribution under faults. */
    Resilience,
    /**
     * Health ping: {"id":7,"kind":"info"}. Answered immediately by
     * the connection's reader thread -- it never enters the admission
     * queue or touches the compute pool -- so a health checker (the
     * distributed WorkerPool) gets an honest liveness signal even
     * from a saturated worker. The reply reports the protocol
     * version, pool width, queue depth/capacity and drain state.
     */
    Info,
};

/**
 * Wire protocol version, reported in info replies. 2 = the
 * distributed-execution revision: info/ping, trial_offset sharding
 * and per-trial fault_samples in resilience responses.
 */
inline constexpr std::uint64_t protocolVersion = 2;

/**
 * Clock distribution named on the wire. HTree and Spine serve both
 * families; Trix (the redundant median-voting grid) has no tree and
 * serves resilience queries only.
 */
enum class WireScheme
{
    HTree,
    Spine,
    Trix,
};

/** Wire name of @p k ("skew" / "resilience"). */
const char *queryKindName(QueryKind k);

/** Wire name of @p s ("htree" / "spine" / "trix"). */
const char *wireSchemeName(WireScheme s);

/** One decoded request line. */
struct WireRequest
{
    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t id = 0;
    QueryKind kind = QueryKind::Skew;
    WireScheme scheme = WireScheme::HTree;
    /** Mesh dimensions of the scenario (cells row-major). */
    int rows = 4;
    int cols = 4;
    /** Resilience only: per-site fault rate in [0, 1]. */
    double faultRate = 0.0;
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;
    std::size_t trials = 256;
    std::size_t grain = 16;
    /**
     * Global index of the first trial ("trial_offset", default 0):
     * local trial i draws from Rng::forTrial(seed, trialOffset + i).
     * The distributed coordinator shards a parent request by sending
     * each worker the parent parameters with trialOffset = the
     * shard's first global trial, so any assignment of shards to
     * workers reproduces the parent's samples bit for bit.
     */
    std::size_t trialOffset = 0;
    /** Per-unit wire delay (the Section III m and eps). */
    core::WireDelay delay{0.05, 0.005};
    /**
     * Wall-clock budget measured from the moment the server read the
     * request; infinity = none. Queue time counts against it, so a
     * request that waited too long fails fast as an empty Partial.
     */
    double deadlineMs = infinity;
};

/** Bounds enforced by parseRequest (memory-bomb protection). */
inline constexpr int maxWireSide = 512;
inline constexpr std::size_t maxWireCells = 1u << 16;
inline constexpr std::size_t maxWireTrials = 1u << 22;

/**
 * Parse one request line (newline already stripped). On failure
 * returns false with @p error describing the first problem; @p out is
 * then unspecified. @p out.id survives when the "id" key was parsed
 * before the error, so the reply can still be correlated.
 */
bool parseRequest(std::string_view line, WireRequest &out,
                  std::string &error);

/** Render @p rq as one request line (no trailing newline). */
std::string encodeRequest(const WireRequest &rq);

/**
 * Render the success response line for @p o (no trailing newline).
 * Statistics are emitted only when at least one trial ran; the
 * per-trial done mask only when the outcome is Partial.
 *
 * @param server_ms wall-clock from request arrival to response.
 */
std::string encodeOutcome(const WireRequest &rq,
                          const serve::RequestOutcome &o,
                          double server_ms);

/** Render an error response line (no trailing newline). */
std::string encodeError(std::uint64_t id, std::string_view code,
                        std::string_view detail);

/** One decoded response line (client side). */
struct WireResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    /** Error code when !ok (errOverloaded / errBadRequest / ...). */
    std::string error;
    /** Human-readable error detail (may be empty). */
    std::string detail;
    /** ok: every requested trial ran. */
    bool complete = false;
    std::uint64_t trialsDone = 0;
    std::uint64_t trialsRequested = 0;
    /** Statistics over the completed trials (0 when none ran). */
    double mean = 0.0;
    double stddev = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
    /** Resilience only: mean faults injected per completed trial. */
    double meanFaults = 0.0;
    /** Per-trial primary observable (skew ns). */
    std::vector<double> samples;
    /** Resilience only: per-trial clocked-cell fraction. */
    std::vector<double> clockedSamples;
    /** Resilience only: per-trial injected fault counts. */
    std::vector<double> faultSamples;
    /** Partial only: trialDone[i] != 0 iff trial i ran. */
    std::vector<std::uint8_t> trialDone;
    /** Server-side wall clock, arrival to response, milliseconds. */
    double serverMs = 0.0;
    /** Info replies: protocol version / pool width / queue state. */
    std::uint64_t proto = 0;
    std::uint64_t threads = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t queueCapacity = 0;
    bool draining = false;
};

/** Parse one response line; false + @p error on malformed input. */
bool parseResponse(std::string_view line, WireResponse &out,
                   std::string &error);

/** What an info/ping reply reports about the server. */
struct InfoReply
{
    std::uint64_t proto = protocolVersion;
    /** Compute pool width of the embedded SweepService. */
    std::uint64_t threads = 0;
    /** Requests currently waiting in the admission queue. */
    std::uint64_t queueDepth = 0;
    /** Admission queue bound (arrivals beyond it are shed). */
    std::uint64_t queueCapacity = 0;
    /** The server is draining and sheds new sweep requests. */
    bool draining = false;
};

/** Render the info reply line for @p id (no trailing newline). */
std::string encodeInfo(std::uint64_t id, const InfoReply &info);

/** Admission queue full: retry later (never silently queued). */
inline constexpr const char *errOverloaded = "overloaded";
/** The request line did not parse or failed validation. */
inline constexpr const char *errBadRequest = "bad_request";
/** The server is draining and accepts no new requests. */
inline constexpr const char *errShuttingDown = "shutting_down";
/** The request line exceeded the reader's line-length cap. */
inline constexpr const char *errTooLarge = "too_large";

/** Default LineReader cap: longest tolerated line, 1 MiB. */
inline constexpr std::size_t defaultMaxLineBytes = 1u << 20;

/**
 * An incremental newline splitter with a hard line-length cap --
 * the protocol's defence against a malicious or corrupt stream that
 * never sends '\n'. Feed raw received bytes in, pull events out:
 *
 *   reader.feed(chunk, n);
 *   std::string line;
 *   for (;;) {
 *       switch (reader.next(line)) {
 *       case LineReader::Next::Line:     handle(line); break;
 *       case LineReader::Next::TooLarge: reply(errTooLarge); break;
 *       case LineReader::Next::NeedMore: goto more;
 *       }
 *   }
 *
 * Buffered data never exceeds the cap plus one feed chunk: the moment
 * a partial line outgrows the cap its bytes are dropped and exactly
 * one TooLarge event is emitted; the reader then discards until the
 * terminating '\n' and resynchronises, so one oversized line costs
 * one error reply, not the connection. Events come out in stream
 * order.
 */
class LineReader
{
  public:
    explicit LineReader(std::size_t max_line_bytes = defaultMaxLineBytes);

    /** What next() found. */
    enum class Next
    {
        /** A complete line (without its '\n') was produced. */
        Line,
        /** An oversized line was detected and its bytes dropped. */
        TooLarge,
        /** The buffered bytes hold no further complete line. */
        NeedMore,
    };

    /** Append @p len received bytes. */
    void feed(const char *data, std::size_t len);

    /** Pull the next event; @p line is set only for Next::Line. */
    Next next(std::string &line);

    /** The line-length cap this reader enforces. */
    std::size_t maxLineBytes() const { return cap; }

    /** Oversized lines dropped so far. */
    std::uint64_t oversizedLines() const { return oversized; }

    /** Total bytes discarded to oversized lines so far. */
    std::uint64_t droppedBytes() const { return dropped; }

  private:
    std::size_t cap;
    std::string buffer;
    /** Inside an oversized line: discard until the next '\n'. */
    bool discarding = false;
    std::uint64_t oversized = 0;
    std::uint64_t dropped = 0;
};

} // namespace vsync::net

#endif // VSYNC_NET_PROTOCOL_HH
