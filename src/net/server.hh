/**
 * @file
 * TCP front end for serve::SweepService.
 *
 * The server speaks the newline-delimited JSON protocol of
 * net/protocol.hh on a listening socket. The thread layout keeps
 * I/O off the compute pool:
 *
 *  - one accept thread, blocking in poll() on the listener;
 *  - one reader thread per connection, scanning lines out of a
 *    bounded buffer and parsing requests;
 *  - one dispatcher thread popping admitted requests off a bounded
 *    queue and running them on the embedded SweepService (whose
 *    ThreadPool does the actual Monte-Carlo work).
 *
 * Admission control is explicit: a request that arrives while the
 * queue holds admissionCapacity entries is *shed* -- the client gets
 * an immediate {"ok":false,"error":"overloaded"} reply -- never
 * silently queued or dropped. Every admitted request is answered
 * exactly once; accepted + shed + bad == lines received.
 *
 * Deadlines propagate: a request's deadline_ms is measured from the
 * moment its line was read, so time spent waiting in the admission
 * queue counts against it. The dispatcher hands the *remaining*
 * budget to SweepService::run; a request whose budget ran out in the
 * queue fails fast as an empty Partial, exactly like an in-process
 * caller passing a zero deadline.
 *
 * stop() is graceful: stop accepting, reply "shutting_down" to lines
 * already in flight, drain the queue for up to drainSeconds, then
 * cancel the in-flight batch and expire the stragglers (they answer
 * as Partial). Every response outlives the socket: connection file
 * descriptors close only after the dispatcher wrote its last reply.
 *
 * Metrics (when cfg.metrics is set) land under "net.*":
 * connections.accepted/active, requests.accepted/shed/bad/completed,
 * request.latency_ms histogram, bytes.in/out -- alongside the
 * embedded service's "serve.*" counters.
 */

#ifndef VSYNC_NET_SERVER_HH
#define VSYNC_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hh"
#include "serve/sweep_service.hh"

namespace vsync::obs
{
class MetricsRegistry;
} // namespace vsync::obs

namespace vsync::net
{

/** Server knobs. */
struct ServerConfig
{
    /** Address to bind (numeric IPv4). */
    std::string host = "127.0.0.1";
    /** Port to bind; 0 = ephemeral (read the result from port()). */
    std::uint16_t port = 0;
    /** Compute pool width; 0 = defaultThreadCount(). */
    unsigned computeThreads = 0;
    /** Admission queue bound; arrivals beyond it are shed. */
    std::size_t admissionCapacity = 64;
    /** Compiled-kernel cache capacity of the embedded service. */
    std::size_t cacheCapacity = 32;
    /**
     * Longest accepted request line. An oversized line is answered
     * with {"ok":false,"error":"too_large"} and skipped (the reader
     * resynchronises at its newline and the connection survives); the
     * buffer never grows past this bound, so a stream that simply
     * never sends '\n' cannot balloon server memory.
     */
    std::size_t maxLineBytes = defaultMaxLineBytes;
    /** stop(): queue-drain budget before stragglers are expired. */
    double drainSeconds = 5.0;
    /** Optional registry for "net.*" and the service's "serve.*". */
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * The scenario server. start()/stop() bracket the listening state;
 * the destructor stops implicitly. One instance serves any number of
 * concurrent connections; requests across all connections share the
 * one admission queue and compute pool.
 */
class ScenarioServer
{
  public:
    explicit ScenarioServer(ServerConfig cfg = {});
    ~ScenarioServer();

    ScenarioServer(const ScenarioServer &) = delete;
    ScenarioServer &operator=(const ScenarioServer &) = delete;

    /**
     * Bind, listen and spawn the I/O threads. Returns false (with a
     * warn) when the address cannot be bound; the instance may not be
     * reused after a failed start.
     */
    bool start();

    /** The bound port (valid after a successful start()). */
    std::uint16_t port() const { return boundPort; }

    /**
     * Graceful shutdown; idempotent, safe to call concurrently with
     * serving. Returns when every admitted request has been answered
     * and every thread joined.
     */
    void stop();

    /** The embedded service (test access: cache stats, cancel). */
    serve::SweepService &service() { return svc; }

  private:
    struct Connection;
    /** One admitted request waiting for the dispatcher. */
    struct Pending
    {
        std::shared_ptr<Connection> conn;
        WireRequest rq;
        /** steady_clock::now() when the request line was read. */
        std::chrono::steady_clock::time_point arrival;
    };
    /** A lazily built (layout, tree) scenario, address-stable. */
    struct Scenario;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void dispatchLoop();
    /** Serve one admitted request (dispatcher thread only). */
    void serveOne(Pending &p);
    const Scenario &scenarioFor(const WireRequest &rq);
    void writeLine(Connection &conn, const std::string &line);
    void wakeThreads();

    ServerConfig cfg;
    serve::SweepService svc;

    int listenFd = -1;
    /** Written once at stop; readers poll it and never drain it. */
    int wakePipe[2] = {-1, -1};
    std::uint16_t boundPort = 0;
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};
    /** Set first in stop(): refuse new connections and requests. */
    std::atomic<bool> draining{false};
    /** Set when the drain budget ran out: serve stragglers expired. */
    std::atomic<bool> expireStragglers{false};

    std::thread acceptThread;
    std::thread dispatchThread;
    std::mutex connMutex;
    std::vector<std::shared_ptr<Connection>> connections;
    std::vector<std::thread> connThreads;

    std::mutex queueMutex;
    std::condition_variable queueCv; //!< dispatcher waits for work
    std::condition_variable drainCv; //!< stop() waits for empty+idle
    std::deque<Pending> queue;
    bool dispatcherBusy = false;
    bool dispatcherExit = false;

    /**
     * Scenario catalog, keyed by (scheme, rows, cols); dispatcher
     * thread only, so unlocked. unique_ptr keeps borrowed layout/tree
     * addresses stable across catalog growth.
     */
    std::map<std::tuple<int, int, int>, std::unique_ptr<Scenario>>
        catalog;
};

} // namespace vsync::net

#endif // VSYNC_NET_SERVER_HH
