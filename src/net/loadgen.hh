/**
 * @file
 * Open-loop load generator for the scenario server.
 *
 * An open-loop client sends each request at its scheduled time -- at
 * offeredRps, request i goes out i/offeredRps seconds after start --
 * regardless of whether earlier responses have arrived. This is the
 * honest way to measure a server under load: a closed-loop client
 * slows down exactly when the server does, hiding the queueing it
 * should be exposing (coordinated omission).
 *
 * Requests are round-robined over a handful of persistent pipelined
 * connections; each connection has one sender thread (pacing by the
 * schedule) and one reader thread. The request id carries the global
 * request index, so responses land in disjoint result slots without
 * locks and every request is accounted for exactly once as completed
 * (an "ok" reply), shed ("overloaded"), errored (any other error
 * reply) or lost (no reply before the receive deadline).
 *
 * bench_net_throughput drives this at swept offered rates and gates
 * on completed + shed + errors + lost == offered plus the
 * bit-identity of every complete response against a direct
 * serve::SweepService run.
 */

#ifndef VSYNC_NET_LOADGEN_HH
#define VSYNC_NET_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace vsync::net
{

/** Load-generation knobs. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Persistent connections to spread requests over. */
    unsigned connections = 4;
    /** Offered rate, requests per second (open loop). */
    double offeredRps = 100.0;
    /** Total requests to offer. */
    std::size_t requests = 100;
    /**
     * Request templates, cycled per request index; ids are
     * overwritten with the global index. Must not be empty.
     */
    std::vector<WireRequest> mix;
    /** Patience for responses after the last send. */
    double recvTimeoutSeconds = 30.0;
};

/** What one load-generation run observed. */
struct LoadGenResult
{
    std::size_t offered = 0;
    /** "ok" replies. */
    std::size_t completed = 0;
    /** "overloaded" replies (admission control shed). */
    std::size_t shed = 0;
    /** Other error replies (bad_request / shutting_down). */
    std::size_t errors = 0;
    /** No reply before the deadline (or connection died). */
    std::size_t lost = 0;
    /** First send to last response (or deadline), seconds. */
    double wallSeconds = 0.0;
    /** completed / wallSeconds. */
    double achievedRps = 0.0;
    /** Send-to-response latency quantiles over completed, ms. */
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    /** responses[i]: the decoded reply to request i (check gotReply). */
    std::vector<WireResponse> responses;
    /** gotReply[i] != 0 iff request i got any reply. */
    std::vector<std::uint8_t> gotReply;
    /** False when connecting or parsing a response failed. */
    bool transportOk = true;
};

/**
 * Offer cfg.requests requests at cfg.offeredRps and collect replies.
 * Blocks until every request is resolved or the receive deadline
 * passes.
 */
LoadGenResult runLoadGen(const LoadGenConfig &cfg);

} // namespace vsync::net

#endif // VSYNC_NET_LOADGEN_HH
