/**
 * @file
 * The 2-D story end to end: a mesh matmul array that global clocking
 * cannot scale (Section V-B) and the hybrid scheme that can
 * (Section VI).
 *
 * We grow an n x n systolic matrix-multiplication mesh, show the
 * worst-case clock skew of the best global tree growing linearly, then
 * run the same computation under hybrid synchronization at a constant
 * cycle and verify the product against a plain reference
 * multiplication.
 */

#include <cmath>
#include <cstdio>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "hybrid/executor.hh"
#include "layout/generators.hh"
#include "systolic/matmul.hh"

int
main()
{
    using namespace vsync;
    const double m = 0.05, eps = 0.005;
    const core::SkewModel model = core::SkewModel::summation(m, eps);

    // Ask the advisor first.
    const auto advice = core::adviseScheme(
        graph::TopologyKind::Mesh, core::TechnologyAssumptions{});
    std::printf("advisor: %s -- %s\n\n",
                core::syncSchemeName(advice.scheme).c_str(),
                advice.justification.c_str());

    hybrid::HybridParams hp;
    hp.localClockPerLambda = m;
    hp.delta = 2.0;
    hp.handshakeWirePerLambda = m;
    hp.handshakeLogic = 0.5;

    std::printf("%6s %18s %18s %14s %10s\n", "n",
                "global sigma (ns)", "thm6 bound (ns)",
                "hybrid (ns)", "correct");

    Rng rng(42);
    bool all_ok = true;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto tree = clocktree::buildHTreeGrid(l, n, n);
        const auto report = core::analyzeSkew(l, tree, model);
        const double bound = core::theorem6Bound(
            l.size(), core::meshCutWidth(n), eps);

        // Random matrices, hybrid run, reference check.
        std::vector<std::vector<systolic::Word>> a(
            n, std::vector<systolic::Word>(n));
        auto b = a;
        for (auto *mat : {&a, &b})
            for (auto &row : *mat)
                for (auto &v : row)
                    v = rng.uniform(-1.0, 1.0);
        systolic::SystolicArray arr = systolic::buildMatMul(n);
        const auto exec = hybrid::runHybrid(
            arr, l, 4.0, hp, systolic::matMulCycles(n),
            systolic::matMulInputs(a, b));
        const auto c = systolic::matMulReference(a, b);
        bool correct = true;
        for (int i = 0; i < n && correct; ++i)
            for (int j = 0; j < n && correct; ++j)
                correct =
                    std::fabs(exec.trace.finalStates[i * n + j][0] -
                              c[i][j]) < 1e-9;
        all_ok = all_ok && correct;

        std::printf("%6d %18.3f %18.3f %14.2f %10s\n", n,
                    eps * report.maxS, bound, exec.cycleTime,
                    correct ? "yes" : "NO");
    }
    std::printf(
        "\nglobal sigma (the best tree's realisable worst case, "
        "beta*maxS) grows ~linearly and always beats the Theorem 6 "
        "floor; the hybrid cycle is flat and the matmul results are "
        "exact -- Fig 8's promise delivered.\n");
    return all_ok ? 0 : 1;
}
