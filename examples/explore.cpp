/**
 * @file
 * vlsisync explorer: a small command-line front end over the whole
 * library. Give it a topology, a size and a process preset and it
 * prints the full synchronization analysis: advisor verdict, the best
 * clock tree per scheme, skew bounds, periods for every clocking mode,
 * and the Theorem 6 floor where it applies.
 *
 * Usage:
 *   explore [topology] [n] [process]
 *     topology: linear | ring | mesh | hex | tree   (default mesh)
 *     n:        side length / cell count knob       (default 16)
 *     process:  nmos | cmos | gaas                  (default cmos)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "circuit/elmore.hh"
#include "circuit/process.hh"
#include "clocktree/render.hh"
#include "common/logging.hh"
#include "clocktree/builders.hh"
#include "core/advisor.hh"
#include "core/clock_period.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"
#include "treemachine/htree_machine.hh"

namespace
{

using namespace vsync;

void
analyse(const std::string &label, const layout::Layout &l,
        const clocktree::ClockTree &tree,
        const circuit::ProcessParams &proc)
{
    const core::SkewModel model =
        core::SkewModel::summation(proc.m, proc.eps);
    const auto report = core::analyzeSkew(l, tree, model);

    core::ClockParams cp;
    cp.alpha = proc.alpha;
    cp.m = proc.m;
    cp.eps = proc.eps;
    cp.bufferDelay = proc.stageDelay;
    cp.bufferSpacing = proc.bufferSpacing;
    cp.delta = proc.delta;
    const auto pipe = core::clockPeriod(report, tree, cp,
                                        core::ClockingMode::Pipelined);
    const auto equi = core::clockPeriod(
        report, tree, cp, core::ClockingMode::Equipotential);

    std::printf("  clock tree '%s': %zu nodes, wire %.0f lambda, "
                "depth %.0f lambda\n",
                tree.name.c_str(), tree.size(), tree.totalWireLength(),
                tree.maxRootPathLength());
    std::printf("    skew: max d = %.2f, max s = %.2f lambda -> "
                "sigma <= %.3f ns (A11 floor %.3f ns)\n",
                report.maxD, report.maxS, report.maxSkewUpper,
                report.maxSkewLower);
    std::printf("    period: pipelined %.3f ns | equipotential %.3f "
                "ns | two-phase %.3f ns\n",
                pipe.period, equi.period,
                core::twoPhasePeriod(report, core::TwoPhaseParams{}));
    if (l.size() <= 72) {
        std::printf("\n%s\n",
                    clocktree::renderWithClock(l, tree, {0.5, true, 100})
                        .c_str());
    }
    (void)label;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;

    const std::string topo = argc > 1 ? argv[1] : "mesh";
    const int n = argc > 2 ? std::atoi(argv[2]) : 16;
    const std::string proc_name = argc > 3 ? argv[3] : "cmos";

    circuit::ProcessParams proc = circuit::ProcessParams::cmosGeneric();
    if (proc_name == "nmos")
        proc = circuit::ProcessParams::nmos1983();
    else if (proc_name == "gaas")
        proc = circuit::ProcessParams::gaasFast();

    std::printf("vlsisync explorer: %s, n = %d, process %s\n\n",
                topo.c_str(), n, proc.name.c_str());

    graph::TopologyKind kind = graph::TopologyKind::Mesh;
    if (topo == "linear")
        kind = graph::TopologyKind::Linear;
    else if (topo == "ring")
        kind = graph::TopologyKind::Ring;
    else if (topo == "hex")
        kind = graph::TopologyKind::Hex;
    else if (topo == "tree")
        kind = graph::TopologyKind::BinaryTree;
    else if (topo != "mesh")
        fatal("unknown topology '%s'", topo.c_str());

    const auto advice =
        core::adviseScheme(kind, core::TechnologyAssumptions{});
    std::printf("advisor: use %s (period %s)\n  %s\n\n",
                core::syncSchemeName(advice.scheme).c_str(),
                growthLawName(advice.periodGrowth).c_str(),
                advice.justification.c_str());

    if (kind == graph::TopologyKind::Linear) {
        const layout::Layout l = layout::linearLayout(n);
        analyse("spine", l, clocktree::buildSpine(l), proc);
        analyse("htree", l, clocktree::buildHTreeLinear(l), proc);
    } else if (kind == graph::TopologyKind::Ring) {
        const layout::Layout l = layout::racetrackRingLayout(n);
        analyse("double-comb", l, clocktree::buildDoubleComb(l), proc);
    } else if (kind == graph::TopologyKind::BinaryTree) {
        int levels = 1;
        while ((1 << (levels + 1)) - 1 <= n)
            ++levels;
        const auto tm = treemachine::buildHTreeMachine(levels);
        analyse("clock-along-data", tm.layout,
                treemachine::buildClockAlongDataPaths(tm), proc);
        const auto stats = treemachine::insertPipelineRegisters(
            tm, proc.bufferSpacing, proc.m, proc.stageDelay);
        std::printf("    pipelined tree machine: interval %.3f ns, "
                    "root-leaf latency %.2f ns, area/N %.2f\n",
                    stats.pipelineInterval, stats.rootToLeafLatency,
                    stats.areaWithRegisters /
                        static_cast<double>(tm.layout.size()));
    } else {
        const layout::Layout l = kind == graph::TopologyKind::Hex
                                     ? layout::hexLayout(n, n)
                                     : layout::meshLayout(n, n);
        analyse("htree", l, clocktree::buildHTreeGrid(l, n, n), proc);
        const double bound = core::theorem6Bound(
            l.size(), core::meshCutWidth(n), proc.eps);
        std::printf("    Theorem 6: every clock tree has sigma >= "
                    "%.4f ns at this size, growing ~linearly with "
                    "n -- prefer the hybrid scheme.\n", bound);

        const auto elmore = circuit::elmoreAnalysis(
            clocktree::buildHTreeGrid(l, n, n),
            circuit::WireRC{}, nullptr);
        std::printf("    unbuffered Elmore settle: %.4f ns (total "
                    "cap %.1f pF) -- the equipotential cost the "
                    "buffered pipelined tree avoids.\n",
                    elmore.maxLeafArrival,
                    elmore.totalCapacitance / 1000.0);
    }
    return 0;
}
