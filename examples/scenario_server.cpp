// Stand-alone scenario server: serve skew/resilience sweeps over TCP.
//
// Usage:   scenario_server [port]        (or VSYNC_NET_PORT; default 7391)
//
// Then from another terminal:
//
//   echo '{"id":1,"kind":"skew","scheme":"htree","rows":8,"cols":8,
//          "trials":64}' | nc 127.0.0.1 7391
//
// Ctrl-C stops gracefully: in-flight requests finish (or come back
// Partial after the drain budget) before the process exits.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "net/server.hh"
#include "obs/metrics.hh"

int
main(int argc, char **argv)
{
    std::uint16_t port = 7391;
    if (const char *env = std::getenv("VSYNC_NET_PORT"))
        port = static_cast<std::uint16_t>(std::atoi(env));
    if (argc > 1)
        port = static_cast<std::uint16_t>(std::atoi(argv[1]));

    // Block the termination signals before any thread exists so the
    // server's worker threads inherit the mask and sigwait() below is
    // the only consumer.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    vsync::obs::MetricsRegistry metrics;
    vsync::net::ServerConfig cfg;
    cfg.port = port;
    cfg.metrics = &metrics;

    vsync::net::ScenarioServer server(cfg);
    if (!server.start())
        return 1;
    std::printf("scenario_server: listening on port %u (Ctrl-C to stop)\n",
                unsigned(server.port()));

    int sig = 0;
    sigwait(&sigs, &sig);
    std::printf("scenario_server: signal %d, draining...\n", sig);
    server.stop();
    std::printf("%s\n", metrics.toJsonString().c_str());
    return 0;
}
