/**
 * @file
 * The "spectrum of synchronization models" as a planning tool: for
 * each topology and technology assumption, print the advisor's scheme,
 * the justifying result, and a quantitative check at a concrete size.
 */

#include <cstdio>

#include "clocktree/builders.hh"
#include "core/advisor.hh"
#include "core/clock_period.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"
#include "treemachine/htree_machine.hh"

namespace
{

using namespace vsync;

/** Quantify the recommended scheme at a 256-cell instance. */
double
measuredPeriod([[maybe_unused]] graph::TopologyKind kind,
               const core::Advice &advice, const core::ClockParams &cp)
{
    const core::SkewModel model =
        core::SkewModel::summation(cp.m, cp.eps);
    switch (advice.scheme) {
      case core::SyncScheme::PipelinedSpine: {
          const layout::Layout l = layout::linearLayout(256);
          const auto t = clocktree::buildSpine(l);
          return core::clockPeriod(core::analyzeSkew(l, t, model), t,
                                   cp, core::ClockingMode::Pipelined)
              .period;
      }
      case core::SyncScheme::PipelinedHTree: {
          const layout::Layout l = layout::meshLayout(16, 16);
          const auto t = clocktree::buildHTreeGrid(l, 16, 16);
          const auto diff = core::SkewModel::difference(cp.m);
          return core::clockPeriod(core::analyzeSkew(l, t, diff), t,
                                   cp, core::ClockingMode::Pipelined)
              .period;
      }
      case core::SyncScheme::ClockAlongDataPaths: {
          const auto tm = treemachine::buildHTreeMachine(8);
          const auto stats =
              treemachine::insertPipelineRegisters(tm, 4.0, cp.m, 0.2);
          return stats.pipelineInterval + cp.delta;
      }
      case core::SyncScheme::Hybrid:
          // Local element cost: bounded by construction.
          return cp.delta + cp.m * 8.0 + 4.0 * cp.m * 4.0 + 3.0 * 0.5;
      case core::SyncScheme::GlobalEquipotential: {
          const layout::Layout l = layout::meshLayout(16, 16);
          const auto t = clocktree::buildHTreeGrid(l, 16, 16);
          return core::clockPeriod(
                     core::analyzeSkew(l, t, model), t, cp,
                     core::ClockingMode::Equipotential)
              .period;
      }
      case core::SyncScheme::FullySelfTimed:
          return cp.delta + 1.0;
      case core::SyncScheme::RedundantGridTrix: {
          // Median voting on uniform links is skew-free layer to
          // layer; the period is the compute time plus one grid stage.
          return cp.delta + cp.bufferDelay + cp.m;
      }
    }
    return 0.0;
}

} // namespace

int
main()
{
    using namespace vsync;

    core::ClockParams cp;
    cp.alpha = 0.05;
    cp.m = 0.05;
    cp.eps = 0.005;
    cp.bufferDelay = 0.2;
    cp.bufferSpacing = 4.0;
    cp.delta = 2.0;

    struct Scenario
    {
        const char *label;
        core::TechnologyAssumptions tech;
    };
    std::vector<Scenario> scenarios;
    {
        core::TechnologyAssumptions t;
        t.skewModel = core::SkewModelKind::Summation;
        scenarios.push_back({"on-chip (summation model)", t});
        t.skewModel = core::SkewModelKind::Difference;
        scenarios.push_back({"tuned discrete wiring (difference)", t});
        t.skewModel = core::SkewModelKind::Summation;
        t.temporalInvariance = false;
        scenarios.push_back({"noisy clock paths (A8 broken)", t});
        t.temporalInvariance = true;
        t.smallSystem = true;
        scenarios.push_back({"small chip (LSI-scale)", t});
        t.smallSystem = false;
        t.faultRate = 0.01;
        scenarios.push_back({"wafer scale (1% buffer faults)", t});
    }

    for (const Scenario &sc : scenarios) {
        std::printf("=== %s ===\n", sc.label);
        for (graph::TopologyKind kind :
             {graph::TopologyKind::Linear, graph::TopologyKind::Mesh,
              graph::TopologyKind::Hex,
              graph::TopologyKind::BinaryTree}) {
            const char *names[] = {"linear", "ring", "mesh", "torus",
                                   "hex", "binary-tree"};
            const auto advice = core::adviseScheme(kind, sc.tech);
            std::printf(
                "  %-11s -> %-24s period %-10s (~%.2f ns at 256 "
                "cells)\n",
                names[static_cast<int>(kind)],
                core::syncSchemeName(advice.scheme).c_str(),
                growthLawName(advice.periodGrowth).c_str(),
                measuredPeriod(kind, advice, cp));
            std::printf("      %s\n", advice.justification.c_str());
        }
        std::printf("\n");
    }
    return 0;
}
