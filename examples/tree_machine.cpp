/**
 * @file
 * Section VIII in action: an H-tree-laid-out Bentley-Kung search
 * machine, clocked along its data paths, pipelined to one query per
 * cycle.
 */

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "systolic/executor.hh"
#include "treemachine/htree_machine.hh"
#include "treemachine/search.hh"

int
main()
{
    using namespace vsync;
    using namespace vsync::treemachine;

    const int levels = 8; // 255 cells, 128 keys
    const int leaves = 1 << (levels - 1);

    // Physical accounting of the H-tree machine.
    const TreeMachineLayout tm = buildHTreeMachine(levels);
    const auto stats = insertPipelineRegisters(tm, 2.0, 0.5, 0.2);
    std::printf("H-tree machine, %d levels: %zu cells in %.0f lambda^2 "
                "(%.2f per cell)\n", levels, tm.layout.size(),
                stats.area, stats.area / tm.layout.size());
    std::printf("root-to-leaf wire %.0f lambda (%.2f x sqrt N); "
                "pipeline interval %.2f ns after %ld registers; "
                "root-to-leaf latency %.1f ns\n",
                stats.rootToLeafLength,
                stats.rootToLeafLength /
                    std::sqrt(static_cast<double>(tm.layout.size())),
                stats.pipelineInterval, stats.totalRegisters,
                stats.rootToLeafLatency);

    // Clock along the data paths: skew per pair tracks its own edge.
    const auto clk = buildClockAlongDataPaths(tm);
    const auto report = core::analyzeSkew(
        tm.layout, clk, core::SkewModel::summation(0.5, 0.05));
    std::printf("clock-along-data-paths: per-pair skew bound %.2f ns "
                "at the root edges, %.2f ns at the leaves\n\n",
                report.maxSkewUpper, 0.55 * 1.0);

    // Load keys, stream queries, check answers.
    Rng rng(88);
    std::vector<systolic::Word> keys(leaves);
    for (auto &k : keys)
        k = std::floor(rng.uniform(0.0, 10000.0));
    std::vector<systolic::Word> queries;
    for (int i = 0; i < 64; ++i)
        queries.push_back(std::floor(rng.uniform(0.0, 10000.0)));

    auto machine = buildSearchMachine(levels, keys);
    const int latency = 2 * (levels - 1);
    const int cycles = latency + 64;
    const auto trace = systolic::runIdeal(machine, cycles,
                                          searchInputs(queries));
    const auto expected =
        searchExpectedOutput(levels, keys, queries, cycles);
    const auto &out = trace.of(0, 2);

    int correct = 0;
    for (int t = 0; t < cycles; ++t)
        correct += std::fabs(out[t] - expected[t]) < 1e-9 ? 1 : 0;
    std::printf("search: %d keys, 64 queries pipelined, latency %d "
                "cycles, throughput 1 query/cycle, %d/%d outputs "
                "correct\n", leaves, latency, correct, cycles);
    std::printf("sample: query %.0f -> nearest-key distance %.0f\n",
                queries[0], out[latency]);
    return correct == cycles ? 0 : 1;
}
