/**
 * @file
 * Quickstart: the vlsisync workflow in one page.
 *
 * 1. Lay out a processor array (a 64-cell linear systolic array).
 * 2. Build a clock tree for it (the Section V-A spine).
 * 3. Pick a skew model and analyse the skew of every communicating
 *    pair (summation model, A10/A11).
 * 4. Compute the achievable clock period for equipotential vs
 *    pipelined distribution (A5-A7).
 * 5. Sample a concrete "chip", run a real systolic computation (FIR)
 *    under those clock arrival times, and check it matches the ideal
 *    lock-step result.
 */

#include <cstdio>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/clock_period.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"
#include "systolic/clocked_executor.hh"
#include "systolic/fir.hh"

int
main()
{
    using namespace vsync;

    // 1. A 64-cell linear array, one cell per lambda.
    const int n = 64;
    const layout::Layout l = layout::linearLayout(n);
    std::printf("layout: %s, %zu cells, bounding box %.0f x %.0f "
                "lambda\n",
                l.layoutName().c_str(), l.size(),
                l.boundingBox().width(), l.boundingBox().height());

    // 2. Run the clock along the array (Fig 4b).
    const clocktree::ClockTree tree = clocktree::buildSpine(l);
    std::printf("clock: %s, %zu nodes, longest root path %.0f lambda\n",
                tree.name.c_str(), tree.size(),
                tree.maxRootPathLength());

    // 3. Summation-model skew analysis: wire delay 0.05 +/- 0.005
    //    ns/lambda.
    const double m = 0.05, eps = 0.005;
    const core::SkewModel model = core::SkewModel::summation(m, eps);
    const core::SkewReport skew = core::analyzeSkew(l, tree, model);
    std::printf("skew: max tree distance between communicating cells "
                "s = %.1f lambda -> sigma <= %.3f ns (independent of "
                "n: Theorem 3)\n",
                skew.maxS, skew.maxSkewUpper);

    // 4. Clock period, both distribution modes.
    core::ClockParams params;
    params.alpha = m;
    params.m = m;
    params.eps = eps;
    params.bufferDelay = 0.2;
    params.bufferSpacing = 4.0;
    params.delta = 2.0;
    const auto pipelined = core::clockPeriod(
        skew, tree, params, core::ClockingMode::Pipelined);
    const auto equipotential = core::clockPeriod(
        skew, tree, params, core::ClockingMode::Equipotential);
    std::printf("period: pipelined %.2f ns (sigma %.3f + delta %.1f + "
                "tau %.2f), equipotential %.2f ns (tau grows with the "
                "array, A6)\n",
                pipelined.period, pipelined.sigma, pipelined.delta,
                pipelined.tau, equipotential.period);

    // 5. Fabricate one chip and run a 64-tap FIR filter on it.
    Rng rng(2026);
    const auto chip = core::sampleSkewInstance(l, tree, core::WireDelay{m, eps}, rng);
    std::vector<Time> offsets;
    for (CellId c = 0; c < n; ++c)
        offsets.push_back(chip.arrival[tree.nodeOfCell(c)]);

    std::vector<systolic::Word> taps(n, 0.5);
    systolic::SystolicArray fir = systolic::buildFir(taps);
    systolic::LinkTiming timing;
    timing.setup = 0.2;
    timing.hold = 0.1;
    timing.clkToQ = 0.2;
    timing.deltaMin = 0.5;
    timing.deltaMax = params.delta;

    const std::vector<systolic::Word> xs{1, 2, 3, 4, 5, 6, 7, 8};
    const int cycles = n + 16;
    const auto ideal = systolic::runIdeal(fir, cycles,
                                          systolic::firInputs(xs));
    const auto run = systolic::runClocked(
        fir, cycles, systolic::firInputs(xs), offsets,
        pipelined.period, timing);

    std::printf("execution: %zu setup / %zu hold violations at the "
                "pipelined period; output %s the ideal lock-step "
                "result\n",
                run.setupViolations, run.holdViolations,
                run.trace.matches(ideal) ? "MATCHES" : "DIFFERS FROM");
    return run.trace.matches(ideal) ? 0 : 1;
}
