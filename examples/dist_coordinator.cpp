// Distributed sweep driver: shard a batch across scenario_server
// workers and fold the results, bit-identical to a local run.
//
// Usage:   dist_coordinator host:port [host:port ...]
//          dist_coordinator 7391 7392        (ports imply 127.0.0.1)
//
// Start one scenario_server per terminal first, e.g.
//
//   terminal 1:  ./examples/scenario_server 7391
//   terminal 2:  ./examples/scenario_server 7392
//   terminal 3:  ./examples/dist_coordinator 7391 7392
//
// The coordinator runs a demo skew + resilience batch against the
// fleet and prints per-request statistics plus the shard ledger. Kill
// a worker mid-run and the batch still completes with the same bytes:
// its shards are reassigned to the survivors.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "net/protocol.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s host:port [host:port ...]\n", argv[0]);
        return 2;
    }

    dist::DistConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        dist::WorkerEndpoint ep;
        const std::size_t colon = arg.find(':');
        if (colon == std::string::npos) {
            ep.port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
        } else {
            ep.host = arg.substr(0, colon);
            ep.port = static_cast<std::uint16_t>(
                std::atoi(arg.c_str() + colon + 1));
        }
        cfg.workers.push_back(ep);
    }

    // A demo batch: one skew sweep and one resilience point, big
    // enough to shard across every worker.
    std::vector<net::WireRequest> batch;
    {
        net::WireRequest rq;
        rq.kind = net::QueryKind::Skew;
        rq.scheme = net::WireScheme::HTree;
        rq.rows = rq.cols = 8;
        rq.seed = 0xd157ULL;
        rq.trials = 8192;
        rq.grain = 128;
        batch.push_back(rq);

        rq.kind = net::QueryKind::Resilience;
        rq.rows = rq.cols = 6;
        rq.faultRate = 0.05;
        rq.trials = 4096;
        batch.push_back(rq);
    }

    dist::Coordinator coord(cfg);
    const dist::DistOutcome out = coord.run(batch);

    for (std::size_t r = 0; r < out.outcomes.size(); ++r) {
        const serve::RequestOutcome &o = out.outcomes[r];
        const bool skew = r == 0;
        const mc::McResult &res =
            skew ? o.skew : o.resilience.maxCommSkew;
        std::printf("request %zu (%s): %zu/%zu trials%s", r,
                    skew ? "skew" : "resilience", o.trialsDone,
                    o.trialsRequested,
                    o.status == serve::RequestStatus::Complete
                        ? ""
                        : " [PARTIAL]");
        if (o.trialsDone > 0)
            std::printf("  mean %.6f  stddev %.6f  max %.6f",
                        res.stat.mean(), res.stat.stddev(),
                        res.stat.max());
        std::printf("\n");
    }

    const dist::ShardLedger &lg = out.ledger;
    std::printf("ledger: %llu shards, %llu dispatched, %llu completed, "
                "%llu retried, %llu hedged, %llu lost (%s)\n",
                static_cast<unsigned long long>(lg.shards),
                static_cast<unsigned long long>(lg.dispatched),
                static_cast<unsigned long long>(lg.completed),
                static_cast<unsigned long long>(lg.retried),
                static_cast<unsigned long long>(lg.hedged),
                static_cast<unsigned long long>(lg.lost),
                lg.balanced() ? "balanced" : "UNBALANCED");
    std::printf("wall: %.1f ms across %zu workers\n", out.wallMs,
                cfg.workers.size());
    return lg.lost == 0 ? 0 : 1;
}
