/**
 * @file
 * A deeper 1-D example: scale a spine-clocked FIR array and watch the
 * Theorem 3 guarantee hold chip after chip.
 *
 * For each array length we fabricate several chips (random per-wire
 * delays within the summation model), compute each chip's minimum safe
 * period from its real clock arrival times, run the filter, and verify
 * the output. The paper's point: the same cell design and the same
 * period work at every length -- 1-D arrays are modular and
 * indefinitely extensible.
 */

#include <algorithm>
#include <cstdio>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "layout/generators.hh"
#include "systolic/clocked_executor.hh"
#include "systolic/fir.hh"

int
main()
{
    using namespace vsync;
    const double m = 0.05, eps = 0.005;

    systolic::LinkTiming timing;
    timing.setup = 0.2;
    timing.hold = 0.1;
    timing.clkToQ = 0.2;
    timing.deltaMin = 0.5;
    timing.deltaMax = 2.0;

    // One fixed period budget for every size: intrinsic link delay
    // plus the one-pitch worst-case skew (Theorem 3's constant).
    const Time period = timing.clkToQ + timing.deltaMax + timing.setup +
                        (m + eps);
    std::printf("fixed period budget: %.3f ns for every array size\n\n",
                period);
    std::printf("%8s %8s %14s %14s %10s\n", "n", "chips",
                "worst min-safe", "worst skew", "all correct");

    Rng rng(7);
    const std::vector<systolic::Word> xs{3, 1, 4, 1, 5, 9, 2, 6};
    bool all_ok = true;
    for (int n : {8, 32, 128, 512, 2048}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        std::vector<systolic::Word> taps(n, 1.0 / n);
        systolic::SystolicArray fir = systolic::buildFir(taps);
        const int cycles = n + 12;
        const auto ideal = systolic::runIdeal(
            fir, cycles, systolic::firInputs(xs));

        Time worst_safe = 0.0, worst_skew = 0.0;
        bool correct = true;
        for (int chip = 0; chip < 5; ++chip) {
            const auto inst =
                core::sampleSkewInstance(
            l, tree, core::WireDelay{m, eps}, rng);
            std::vector<Time> offsets;
            for (CellId c = 0; c < n; ++c)
                offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);
            worst_safe = std::max(
                worst_safe,
                systolic::minSafePeriod(fir, offsets, timing));
            worst_skew = std::max(worst_skew, inst.maxCommSkew);
            const auto run = systolic::runClocked(
                fir, cycles, systolic::firInputs(xs), offsets, period,
                timing);
            correct = correct && run.correct &&
                      run.trace.matches(ideal);
        }
        std::printf("%8d %8d %11.3f ns %11.4f ns %10s\n", n, 5,
                    worst_safe, worst_skew, correct ? "yes" : "NO");
        all_ok = all_ok && correct;
    }
    std::printf("\nTheorem 3 in practice: min-safe periods are flat in "
                "n and always below the fixed budget, so one clocked "
                "cell design extends to any array length.\n");
    return all_ok ? 0 : 1;
}
