/**
 * @file
 * The Section VII chip on your desk: fabricate virtual inverter-string
 * chips, clock them equipotentially and pipelined, and watch the 68x
 * speedup -- then rebalance the process and watch the sqrt(n) yield
 * law appear.
 */

#include <cmath>
#include <cstdio>

#include "circuit/inverter_string.hh"
#include "circuit/yield.hh"
#include "common/rng.hh"

int
main()
{
    using namespace vsync;
    using namespace vsync::circuit;

    const ProcessParams nmos = ProcessParams::nmos1983();
    Rng rng(1983);

    std::printf("fabricating the paper's chip: 2048 minimum inverters "
                "in %s...\n\n", nmos.name.c_str());
    const InverterString chip(2048, nmos, rng.deriveStream(1));

    const double equi = chip.equipotentialCycle();
    const double pipe = chip.pipelinedCycleAnalytic();
    std::printf("equipotential single-phase clock: %.1f us per cycle\n",
                equi / 1000.0);
    std::printf("pipelined clock:                  %.0f ns per cycle\n",
                pipe);
    std::printf("speedup:                          %.0fx  (paper: "
                "68x)\n\n", equi / pipe);

    // Validate a short string against the discrete-event simulator.
    const InverterString small(96, nmos, rng.deriveStream(2));
    const double analytic = small.pipelinedCycleAnalytic();
    const double measured = small.minPipelinedPeriod(8, 0.5);
    std::printf("desim check (96 stages): analytic min period %.1f ns, "
                "simulated %.1f ns\n\n", analytic, measured);

    // Balanced process: the discrepancy becomes a random walk.
    ProcessParams balanced = nmos;
    balanced.pairBias = 0.0;
    balanced.pairDiscrepancySigma = 0.5;
    std::printf("balanced process (no systematic bias): 90%%-yield "
                "pipelined cycle\n");
    std::printf("%10s %16s %22s\n", "n", "cycle (ns)",
                "(cycle - floor)/sqrt(n)");
    for (int n : {256, 1024, 4096, 16384}) {
        const double t = cycleTimeAtYield(balanced, n, 0.9);
        std::printf("%10d %16.0f %22.3f\n", n, t,
                    (t - 2.0 * balanced.minPulseWidth) /
                        std::sqrt(static_cast<double>(n)));
    }
    std::printf("\nthe normalised column is flat: at fixed yield the "
                "cycle grows as sqrt(n) -- the paper's probabilistic "
                "limit for unbiased strings.\n");
    return 0;
}
