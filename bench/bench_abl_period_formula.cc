/**
 * @file
 * ABL2 -- period formula ablation (assumption A5's discussion).
 *
 * The paper uses the simple sum sigma + delta + tau and notes an exact
 * discipline might give e.g. max(tau, 2*sigma + delta), "but such
 * formulas will exhibit the same type of growth". We compute both for
 * spine-clocked linear arrays and H-tree-clocked meshes under the
 * summation model and classify the growth of each.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "desim/elements.hh"
#include "desim/latch.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    const double m = 0.05, eps = 0.005;
    const core::SkewModel model = core::SkewModel::summation(m, eps);
    core::ClockParams cp;
    cp.m = m;
    cp.eps = eps;
    cp.bufferDelay = 0.2;
    cp.bufferSpacing = 4.0;
    cp.delta = 2.0;

    bench::headline(
        "ABL2: sigma+delta+tau vs max(tau, 2*sigma+delta) -- same "
        "growth class on every structure (pipelined, summation "
        "model)");

    Table table("ABL2 period formulas",
                {"structure", "sigma (ns)", "sum formula (ns)",
                 "max formula (ns)", "two-phase (ns)", "ratio"});

    const core::TwoPhaseParams tp;
    std::vector<double> lin_n, lin_sum, lin_max, lin_2p;
    for (int n : {8, 64, 512, 4096}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto t = clocktree::buildSpine(l);
        const auto report = core::analyzeSkew(l, t, model);
        const auto p = core::clockPeriod(report, t, cp,
                                         core::ClockingMode::Pipelined);
        const Time two = core::twoPhasePeriod(report, tp);
        table.addRow({csprintf("linear-%d", n), Table::num(p.sigma),
                      Table::num(p.period), Table::num(p.altPeriod),
                      Table::num(two),
                      Table::num(p.period / p.altPeriod)});
        lin_n.push_back(n);
        lin_sum.push_back(p.period);
        lin_max.push_back(p.altPeriod);
        lin_2p.push_back(two);
    }

    std::vector<double> mesh_n, mesh_sum, mesh_max, mesh_2p;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto t = clocktree::buildHTreeGrid(l, n, n);
        const auto report = core::analyzeSkew(l, t, model);
        const auto p = core::clockPeriod(report, t, cp,
                                         core::ClockingMode::Pipelined);
        const Time two = core::twoPhasePeriod(report, tp);
        table.addRow({csprintf("mesh-%dx%d", n, n),
                      Table::num(p.sigma), Table::num(p.period),
                      Table::num(p.altPeriod), Table::num(two),
                      Table::num(p.period / p.altPeriod)});
        mesh_n.push_back(n);
        mesh_sum.push_back(p.period);
        mesh_max.push_back(p.altPeriod);
        mesh_2p.push_back(two);
    }
    emitTable(table, opts);

    bench::printGrowth("linear, sum formula", lin_n, lin_sum);
    bench::printGrowth("linear, max formula", lin_n, lin_max);
    bench::printGrowth("linear, two-phase", lin_n, lin_2p);
    bench::printGrowth("mesh, sum formula", mesh_n, mesh_sum);
    bench::printGrowth("mesh, max formula", mesh_n, mesh_max);
    bench::printGrowth("mesh, two-phase", mesh_n, mesh_2p);
    std::printf("expected: the two formulas differ by at most a small "
                "constant factor and always share a growth class -- "
                "O(1) for spine-clocked 1-D arrays, Theta(n) for "
                "meshes (A5's abstraction is growth-faithful).\n");

    // Circuit-level justification of the two-phase formula's 2*sigma
    // term: skew a phi-1 distribution wire against phi-2 and watch the
    // delivered phases overlap (the race) exactly when the skew
    // exceeds the generator's non-overlap gap.
    bench::headline(
        "ABL2b: two-phase discipline vs skew (desim) -- generator gap "
        "1 ns, phase width 3 ns, period 10 ns, 20 cycles");
    Table tp_table("ABL2b phase overlap vs skew",
                   {"phi1 wire skew (ns)", "overlap episodes",
                    "overlap time (ns)", "gap needed (ns)"});
    for (double skew : {0.0, 0.5, 0.9, 1.1, 1.5, 2.5}) {
        desim::Simulator sim;
        desim::Signal p1_gen("phi1@gen"), p2_gen("phi2@gen");
        desim::Signal p1_cell("phi1@cell");
        desim::DelayElement wire(sim, p1_gen, p1_cell,
                                 desim::EdgeDelays::same(skew));
        desim::PhaseOverlapDetector det(p1_cell, p2_gen);
        desim::TwoPhaseClock clock(sim, p1_gen, p2_gen, 10.0, 3.0, 1.0,
                                   20);
        sim.run();
        tp_table.addRow(
            {Table::num(skew),
             Table::integer(static_cast<long long>(det.overlaps())),
             Table::num(det.overlapTime()), Table::num(skew)});
    }
    emitTable(tp_table, opts);
    std::printf(
        "expected: zero overlaps while skew <= the 1 ns gap, one "
        "overlap per cycle beyond it -- the discipline must budget a "
        "gap of sigma per phase boundary, which is exactly "
        "twoPhasePeriod's 2*(gap + sigma) term.\n");
    return 0;
}
