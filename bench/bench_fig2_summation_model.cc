/**
 * @file
 * FIG2 -- the summation model (Fig 2, assumptions A10/A11).
 *
 * Two cells hang from a common ancestor by equal-length branches
 * (d = 0), so the difference model would predict zero skew; with
 * per-wire variation eps the skew instead scales with the total
 * connecting path length s. Each row sweeps s and reports the A11
 * lower bound, the realised spread over many chips, and the A10 upper
 * bound -- the sandwich eps*s <= sigma <= (m+eps)*s.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/clock_tree.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "graph/graph.hh"
#include "layout/layout.hh"

namespace
{

using namespace vsync;

/** Equal branches of length s/2 each, split into unit wires so the
 *  per-wire variation accumulates along the path (the Section III
 *  random-walk picture). */
struct EqualBranches
{
    layout::Layout layout;
    clocktree::ClockTree tree;

    explicit EqualBranches(int half)
    {
        graph::Graph g(2);
        g.addBidirectional(0, 1);
        layout = layout::Layout("equal-branches", g);
        layout.place(0, {static_cast<Length>(-half), 0.0});
        layout.place(1, {static_cast<Length>(half), 0.0});
        layout.routeRemaining();

        NodeId left = tree.addRoot({0.0, 0.0});
        NodeId right = left;
        for (int i = 1; i <= half; ++i) {
            left = tree.addChild(left,
                                 {static_cast<Length>(-i), 0.0});
            right = tree.addChild(right,
                                  {static_cast<Length>(i), 0.0});
        }
        tree.bindCell(left, 0);
        tree.bindCell(right, 1);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xf162;

    const double m = 0.5;
    const double eps = 0.05;
    const core::SkewModel model = core::SkewModel::summation(m, eps);

    bench::headline(
        "FIG2: summation model -- skew vs connecting path length s "
        "(equal branches, d = 0; 2000 chips per row; m = 0.5, "
        "eps = 0.05 ns/lambda)");

    Table table("FIG2 summation model",
                {"s (lambda)", "lower beta*s (ns)", "p99 skew (ns)",
                 "max skew (ns)", "adversarial (ns)",
                 "upper g(s) (ns)"});

    std::vector<double> ss, worst;
    Rng rng(seed);
    for (int half : {1, 2, 4, 8, 16, 32, 64}) {
        EqualBranches eb(half);
        const double s = 2.0 * half;
        SampleSet skews;
        for (int chip = 0; chip < 2000; ++chip) {
            const auto inst =
                core::sampleSkewInstance(eb.layout, eb.tree,
                                         core::WireDelay{m, eps}, rng);
            skews.add(inst.maxCommSkew);
        }
        const auto adv =
            core::adversarialSkewInstance(eb.layout, eb.tree,
                                          core::WireDelay{m, eps});
        const auto report = core::analyzeSkew(eb.layout, eb.tree, model);
        table.addRow({Table::num(s),
                      Table::num(report.edges[0].lower),
                      Table::num(skews.quantile(0.99)),
                      Table::num(skews.stat().max()),
                      Table::num(adv.maxCommSkew),
                      Table::num(report.maxSkewUpper)});
        ss.push_back(s);
        worst.push_back(adv.maxCommSkew);
    }
    emitTable(table, opts);
    bench::printGrowth("worst-case skew vs s", ss, worst);
    std::printf("expected: even with d = 0 the worst-case skew grows "
                "linearly in s, sandwiched between eps*s and "
                "(m+eps)*s; random chips sit between the bounds.\n");
    return 0;
}
