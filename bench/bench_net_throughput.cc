/**
 * @file
 * PERF -- network serving throughput at swept offered rates, gated.
 *
 * An in-process ScenarioServer is driven over loopback by the
 * open-loop net::LoadGen at several offered rates with a request mix
 * spanning both sweep families and three distributions (skew on
 * H-tree and spine; resilience on H-tree and the TRIX grid). Per rate
 * the bench reports achieved RPS, the shed fraction and p50/p99
 * latency, and writes BENCH_net_throughput.json.
 *
 * Exit status is the CI gate, nonzero when either serving invariant
 * breaks:
 *  - bit identity: every completed response must match a direct
 *    serve::SweepService (mc::) run of the same scenario, sample for
 *    sample, through the wire encoding;
 *  - accounting: every offered request resolves exactly once --
 *    completed + shed + errors + lost == offered with no errors and
 *    no losses, and the server's accepted/shed counters must agree
 *    (shedding is explicit, never silent).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"
#include "mc/sweeps.hh"
#include "net/loadgen.hh"
#include "net/server.hh"
#include "obs/metrics.hh"

namespace
{

using namespace vsync;

const double offeredRates[] = {50.0, 200.0, 800.0};
constexpr double secondsPerRate = 0.5;
const core::WireDelay delay{0.05, 0.005};

/** The per-template reference a served response must match. */
struct Reference
{
    std::vector<double> samples;
    std::vector<double> clockedSamples;
    double mean = 0.0;
    double stddev = 0.0;
};

bool
matches(const net::WireResponse &rsp, const Reference &ref)
{
    if (!rsp.complete || rsp.samples != ref.samples ||
        rsp.clockedSamples != ref.clockedSamples)
        return false;
    return rsp.mean == ref.mean && rsp.stddev == ref.stddev;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xbe7ULL;

    // The request mix: one template per (family, distribution) pair.
    std::vector<net::WireRequest> mix;
    {
        net::WireRequest rq;
        rq.kind = net::QueryKind::Skew;
        rq.scheme = net::WireScheme::HTree;
        rq.rows = rq.cols = 8;
        rq.seed = seed;
        rq.trials = 8;
        rq.grain = 4;
        rq.delay = delay;
        mix.push_back(rq);
        rq.scheme = net::WireScheme::Spine;
        mix.push_back(rq);
        rq.kind = net::QueryKind::Resilience;
        rq.scheme = net::WireScheme::HTree;
        rq.rows = rq.cols = 6;
        rq.faultRate = 0.05;
        mix.push_back(rq);
        rq.scheme = net::WireScheme::Trix;
        mix.push_back(rq);
    }

    // Direct in-process references, computed exactly the way the
    // server builds its scenarios (mesh layout, H-tree/spine builders,
    // default physics) -- the serving path must change nothing.
    std::vector<Reference> refs;
    for (const net::WireRequest &rq : mix) {
        mc::McConfig cfg;
        cfg.seed = rq.seed;
        cfg.trials = rq.trials;
        cfg.grain = rq.grain;
        const layout::Layout l = layout::meshLayout(rq.rows, rq.cols);
        Reference ref;
        if (rq.kind == net::QueryKind::Skew) {
            const auto tree =
                rq.scheme == net::WireScheme::HTree
                    ? clocktree::buildHTreeGrid(l, rq.rows, rq.cols)
                    : clocktree::buildSpine(l);
            const mc::McResult r = mc::skewSweep(l, tree, rq.delay, cfg);
            ref.samples = r.samples;
            ref.mean = r.stat.mean();
            ref.stddev = r.stat.stddev();
        } else {
            mc::ResilienceConfig rc;
            rc.delay = rq.delay;
            const mc::DistributionKind kind =
                rq.scheme == net::WireScheme::Trix
                    ? mc::DistributionKind::TrixGrid
                    : mc::DistributionKind::HTree;
            const mc::ResiliencePoint p = mc::resilienceAtRate(
                l, rq.rows, rq.cols, kind, rq.faultRate, rc, cfg);
            ref.samples = p.maxCommSkew.samples;
            ref.clockedSamples = p.clockedFraction.samples;
            ref.mean = p.maxCommSkew.stat.mean();
            ref.stddev = p.maxCommSkew.stat.stddev();
        }
        refs.push_back(std::move(ref));
    }

    obs::MetricsRegistry metrics;
    net::ServerConfig sc;
    sc.metrics = &metrics;
    net::ScenarioServer server(sc);
    if (!server.start()) {
        std::fprintf(stderr, "cannot start loopback server\n");
        return 1;
    }

    struct RatePoint
    {
        double offeredRps = 0.0;
        net::LoadGenResult res;
    };
    std::vector<RatePoint> points;
    std::size_t offeredTotal = 0;
    std::size_t mismatches = 0;
    bool accountingOk = true;

    for (const double rate : offeredRates) {
        net::LoadGenConfig lg;
        lg.port = server.port();
        lg.connections = 4;
        lg.offeredRps = rate;
        lg.requests =
            static_cast<std::size_t>(rate * secondsPerRate + 0.5);
        lg.mix = mix;
        RatePoint pt;
        pt.offeredRps = rate;
        pt.res = net::runLoadGen(lg);
        offeredTotal += pt.res.offered;

        accountingOk = accountingOk && pt.res.transportOk &&
                       pt.res.completed + pt.res.shed +
                               pt.res.errors + pt.res.lost ==
                           pt.res.offered &&
                       pt.res.errors == 0 && pt.res.lost == 0;
        for (std::size_t i = 0; i < pt.res.offered; ++i) {
            if (!pt.res.gotReply[i] || !pt.res.responses[i].ok)
                continue;
            if (!matches(pt.res.responses[i], refs[i % refs.size()]))
                ++mismatches;
        }
        points.push_back(std::move(pt));
    }
    server.stop();

    // The server-side ledger must agree with the client's: every line
    // it parsed was either admitted or shed, loudly.
    const std::uint64_t accepted =
        metrics.counter("net.requests.accepted").value();
    const std::uint64_t shedSrv =
        metrics.counter("net.requests.shed").value();
    accountingOk = accountingOk &&
                   accepted + shedSrv ==
                       static_cast<std::uint64_t>(offeredTotal);

    bench::headline("open-loop loopback serving: offered rate sweep, "
                    "4-template skew/resilience mix");
    Table table("net throughput",
                {"offered rps", "completed", "shed", "achieved rps",
                 "p50 ms", "p99 ms"});
    for (const RatePoint &pt : points)
        table.addRow({Table::num(pt.offeredRps),
                      Table::integer(static_cast<long long>(
                          pt.res.completed)),
                      Table::integer(static_cast<long long>(pt.res.shed)),
                      Table::num(pt.res.achievedRps),
                      Table::num(pt.res.p50Ms),
                      Table::num(pt.res.p99Ms)});
    emitTable(table, opts);

    bench::BenchJson result("net_throughput", seed);
    JsonWriter &json = result.writer();
    json.keyValue("mix_templates",
                  static_cast<std::uint64_t>(mix.size()))
        .keyValue("seconds_per_rate", secondsPerRate);
    json.key("rates").beginArray();
    for (const RatePoint &pt : points) {
        const double shedFraction =
            pt.res.offered
                ? static_cast<double>(pt.res.shed) /
                      static_cast<double>(pt.res.offered)
                : 0.0;
        json.beginObject()
            .keyValue("offered_rps", pt.offeredRps)
            .keyValue("offered",
                      static_cast<std::uint64_t>(pt.res.offered))
            .keyValue("completed",
                      static_cast<std::uint64_t>(pt.res.completed))
            .keyValue("shed", static_cast<std::uint64_t>(pt.res.shed))
            .keyValue("shed_fraction", shedFraction)
            .keyValue("achieved_rps", pt.res.achievedRps)
            .keyValue("p50_ms", pt.res.p50Ms)
            .keyValue("p99_ms", pt.res.p99Ms)
            .endObject();
    }
    json.endArray();
    json.keyValue("accepted_server",
                  static_cast<std::uint64_t>(accepted))
        .keyValue("shed_server", static_cast<std::uint64_t>(shedSrv))
        .keyValue("offered_total",
                  static_cast<std::uint64_t>(offeredTotal))
        .keyValue("response_mismatches",
                  static_cast<std::uint64_t>(mismatches));

    const bool gate_ok = accountingOk && mismatches == 0;
    json.key("gate").beginObject()
        .keyValue("bit_identical_responses", mismatches == 0)
        .keyValue("accounting_balanced", accountingOk)
        .keyValue("passed", gate_ok)
        .endObject();

    std::printf("\nwrote BENCH_net_throughput.json (%zu offered; "
                "%zu mismatches; accounting %s)\n",
                offeredTotal, mismatches,
                accountingOk ? "balanced" : "BROKEN");
    return gate_ok ? 0 : 1;
}
