/**
 * @file
 * PERF -- google-benchmark microbenchmarks of the discrete-event
 * kernel and the simulated clock nets (engineering, not a paper
 * figure).
 */

#include <benchmark/benchmark.h>

#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "desim/clock_net.hh"
#include "desim/simulator.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;

void
BM_EventQueueChurn(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        desim::Simulator sim;
        int count = 0;
        std::function<void()> tick = [&]() {
            if (++count < depth)
                sim.schedule(1.0, tick);
        };
        sim.schedule(0.0, tick);
        sim.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_FanoutScheduling(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    for (auto _ : state) {
        desim::Simulator sim;
        for (int i = 0; i < fanout; ++i)
            sim.schedule(static_cast<Time>(i % 97),
                         []() { benchmark::ClobberMemory(); });
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_FanoutScheduling)->Arg(1000)->Arg(50000);

void
BM_PipelinedSpineClockNet(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::linearLayout(n);
    const auto tree = clocktree::buildSpine(l);
    const auto buffered =
        clocktree::BufferedClockTree::insertBuffers(tree, 4.0);
    for (auto _ : state) {
        desim::Simulator sim;
        desim::ClockNet net(
            sim, buffered,
            [](const clocktree::BufferedSite &site, std::size_t) {
                Time d = 0.5 * site.wireFromParent;
                if (site.isBuffer)
                    d += 0.2;
                return desim::EdgeDelays::same(d);
            });
        net.drive(2.0, 16);
        benchmark::DoNotOptimize(
            net.risingArrivals(tree.nodeOfCell(n - 1)).size());
    }
    state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_PipelinedSpineClockNet)->Arg(64)->Arg(512)->Arg(4096);

} // namespace
