/**
 * @file
 * FIG1 -- the difference model (Fig 1, assumption A9).
 *
 * Two cells hang from a common ancestor by branches of lengths h1 and
 * h2; the skew between them is bounded by f(d) with d = h1 - h2. We
 * sweep d at fixed h2, draw many chips whose wire delays vary within
 * +/- eps ~ 0 (the difference model's regime: tuned, repeatable wires)
 * and report the model bound next to the realised skew.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/clock_tree.hh"
#include "common/rng.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "graph/graph.hh"
#include "layout/layout.hh"

namespace
{

using namespace vsync;

/** Two cells on branches of length h1/h2 below a common root. */
struct BranchPair
{
    layout::Layout layout;
    clocktree::ClockTree tree;

    BranchPair(Length h1, Length h2)
    {
        graph::Graph g(2);
        g.addBidirectional(0, 1);
        layout = layout::Layout("branch-pair", g);
        layout.place(0, {-h1, 0.0});
        layout.place(1, {h2, 0.0});
        layout.routeRemaining();

        const NodeId root = tree.addRoot({0.0, 0.0});
        tree.bindCell(tree.addChild(root, {-h1, 0.0}), 0);
        tree.bindCell(tree.addChild(root, {h2, 0.0}), 1);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xf161;

    const double m = 0.5;    // ns per lambda
    const double eps = 0.005; // tiny variation: difference regime
    const core::SkewModel model = core::SkewModel::difference(m + eps);

    bench::headline(
        "FIG1: difference model -- skew vs path-length difference d "
        "(h2 = 8 lambda, 1000 chips per row, m = 0.5 ns/lambda, "
        "eps = 0.005)");

    Table table("FIG1 difference model",
                {"d (lambda)", "bound f(d) (ns)", "max skew (ns)",
                 "mean skew (ns)"});

    std::vector<double> ds, skews;
    Rng rng(seed);
    const Length h2 = 8.0;
    for (Length d : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        BranchPair bp(h2 + d, h2);
        RunningStat stat;
        for (int chip = 0; chip < 1000; ++chip) {
            const auto inst =
                core::sampleSkewInstance(bp.layout, bp.tree,
                                         core::WireDelay{m, eps}, rng);
            stat.add(inst.maxCommSkew);
        }
        const auto report = core::analyzeSkew(bp.layout, bp.tree, model);
        table.addRow({Table::num(d), Table::num(report.maxSkewUpper),
                      Table::num(stat.max()), Table::num(stat.mean())});
        if (d > 0.0) {
            ds.push_back(d);
            skews.push_back(stat.max());
        }
    }
    emitTable(table, opts);
    bench::printGrowth("skew vs d", ds, skews);
    std::printf("expected: skew tracks f(d) = m*d linearly; equal-length "
                "branches (d = 0) have near-zero skew.\n");
    return 0;
}
