/**
 * @file
 * FIG8 -- hybrid synchronization (Section VI, Fig 8).
 *
 * For n x n meshes under the summation model, four ways to run the
 * array:
 *  - global equipotential clock (A6): period grows with the layout,
 *  - global pipelined clock: tau is constant but the skew sigma of the
 *    best tree grows Theta(n) (Section V-B), so the period grows too,
 *  - fully self-timed: constant rate but every cell pays the
 *    handshake overhead and the array still runs at worst-case cell
 *    speed (Section I),
 *  - hybrid (local clocks + self-timed element network): constant
 *    cycle, plain clocked cell design, and the matmul result still
 *    matches the ideal executor.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "hybrid/executor.hh"
#include "layout/generators.hh"
#include "systolic/matmul.hh"
#include "systolic/selftimed.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xf169;

    const double m = 0.05, eps = 0.005;
    const core::SkewModel model = core::SkewModel::summation(m, eps);
    core::ClockParams cp;
    cp.alpha = m;
    cp.m = m;
    cp.eps = eps;
    cp.bufferDelay = 0.2;
    cp.bufferSpacing = 4.0;
    cp.delta = 2.0;

    hybrid::HybridParams hp;
    hp.localClockPerLambda = m;
    hp.delta = cp.delta;
    hp.handshakeWirePerLambda = m;
    hp.handshakeLogic = 0.5;

    // Self-timed handshake overhead per firing (per-cell, Section I's
    // "extra hardware and delay in each cell").
    const Time selftimed_overhead = 1.0;

    bench::headline(
        "FIG8: synchronizing n x n meshes -- cycle time by scheme "
        "(summation model, m = 0.05, eps = 0.005, delta = 2 ns, "
        "4x4-lambda hybrid elements)");

    Table table("FIG8 hybrid synchronization",
                {"n", "equipotential (ns)", "pipelined global (ns)",
                 "self-timed (ns)", "hybrid (ns)", "hybrid correct"});

    Rng rng(seed);
    std::vector<double> ns, equi, pipe, hybr;
    for (int n : {8, 16, 32, 64}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto tree = clocktree::buildHTreeGrid(l, n, n);
        const auto report = core::analyzeSkew(l, tree, model);
        const auto pe = core::clockPeriod(
            report, tree, cp, core::ClockingMode::Equipotential);
        const auto pp = core::clockPeriod(report, tree, cp,
                                          core::ClockingMode::Pipelined);

        // Self-timed: uniform worst-case cells (the regular-array
        // case), so the steady cycle is delta + handshake overhead.
        systolic::SystolicArray arr = systolic::buildMatMul(n);
        const auto st = systolic::runSelfTimed(
            arr, 3 * n,
            [&](CellId, int) { return cp.delta + selftimed_overhead; },
            true);

        // Hybrid: run the real matmul and verify the product.
        std::vector<std::vector<systolic::Word>> a(
            n, std::vector<systolic::Word>(n));
        auto b = a;
        for (auto *mat : {&a, &b})
            for (auto &row : *mat)
                for (auto &v : row)
                    v = rng.uniform(-1.0, 1.0);
        const auto exec = hybrid::runHybrid(
            arr, l, 4.0, hp, systolic::matMulCycles(n),
            systolic::matMulInputs(a, b));
        const auto c = systolic::matMulReference(a, b);
        bool correct = true;
        for (int i = 0; i < n && correct; ++i)
            for (int j = 0; j < n && correct; ++j)
                correct = std::fabs(exec.trace.finalStates[i * n + j][0] -
                                    c[i][j]) < 1e-9;

        table.addRow({Table::integer(n), Table::num(pe.period),
                      Table::num(pp.period),
                      Table::num(st.steadyCycle),
                      Table::num(exec.cycleTime),
                      correct ? "yes" : "NO"});
        ns.push_back(n);
        equi.push_back(pe.period);
        pipe.push_back(pp.period);
        hybr.push_back(exec.cycleTime);
    }
    emitTable(table, opts);
    bench::printGrowth("equipotential", ns, equi);
    bench::printGrowth("pipelined global", ns, pipe);
    bench::printGrowth("hybrid", ns, hybr);
    std::printf("expected: both global schemes grow with n (A6 resp. "
                "Theorem 6's sigma), self-timed and hybrid stay O(1); "
                "hybrid wins by keeping cells simple and avoiding the "
                "per-cell handshake tax.\n");
    return 0;
}
