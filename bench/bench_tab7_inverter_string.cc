/**
 * @file
 * TAB-VII -- the Section VII inverter-string experiment.
 *
 * Part A reproduces the paper's measurement: a 2048-inverter nMOS
 * string clocks equipotentially at ~34 us and pipelined at ~500 ns, a
 * ~68x speedup, repeatable across five chips because a systematic
 * rise/fall bias dominates random variation.
 *
 * Part B sweeps the string length: the speedup grows linearly in n
 * ("a similar inverter string of any length could be clocked 68 times
 * faster" -- the ratio at the calibrated length, growing beyond it).
 *
 * Part C drops the bias (balanced odd/even inverters): the residual
 * discrepancy is a zero-mean random walk, so at fixed yield the
 * pipelined cycle grows as sqrt(n) -- the paper's probabilistic law --
 * with the yield table at 50/90/99%.
 *
 * Part D validates the analytic model against the discrete-event
 * simulator on shorter strings.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuit/inverter_string.hh"
#include "circuit/yield.hh"
#include "common/rng.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    using namespace vsync::circuit;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x7ab7;

    const ProcessParams nmos = ProcessParams::nmos1983();
    Rng rng(seed);

    // Part A: the paper's chip.
    bench::headline(
        "TAB-VII A: 2048-inverter nMOS string, five fabricated chips "
        "(paper: ~34 us equipotential, ~500 ns pipelined, 68x)");
    Table a("TAB-VII A: the paper's experiment",
            {"chip", "equipotential (us)", "pipelined (ns)", "speedup"});
    for (int chip = 0; chip < 5; ++chip) {
        const InverterString s(
            2048, nmos,
            rng.deriveStream(static_cast<std::uint64_t>(chip)));
        const double equi_us = s.equipotentialCycle() / 1000.0;
        const double pipe_ns = s.pipelinedCycleAnalytic();
        a.addRow({Table::integer(chip + 1), Table::fixed(equi_us, 1),
                  Table::fixed(pipe_ns, 0),
                  Table::fixed(equi_us * 1000.0 / pipe_ns, 1)});
    }
    emitTable(a, opts);

    // Part B: length sweep.
    bench::headline("TAB-VII B: string length sweep (one chip each)");
    Table b("TAB-VII B: speedup vs length",
            {"n", "equipotential (us)", "pipelined (ns)", "speedup"});
    std::vector<double> ns, speedups;
    for (int n : {128, 256, 512, 1024, 2048, 4096, 8192, 16384}) {
        const InverterString s(
            n, nmos, rng.deriveStream(1000 + static_cast<unsigned>(n)));
        const double equi = s.equipotentialCycle();
        const double pipe = s.pipelinedCycleAnalytic();
        b.addRow({Table::integer(n), Table::fixed(equi / 1000.0, 2),
                  Table::fixed(pipe, 0), Table::fixed(equi / pipe, 1)});
        ns.push_back(n);
        speedups.push_back(equi / pipe);
    }
    emitTable(b, opts);
    std::printf("speedup at n=2048 is the paper's 68x; the ratio "
                "saturates as the bias term comes to dominate the "
                "pipelined cycle.\n");

    // Part C: balanced strings -- the sqrt(n) fixed-yield law.
    ProcessParams balanced = nmos;
    balanced.pairBias = 0.0;
    balanced.pairDiscrepancySigma = 0.5;
    bench::headline(
        "TAB-VII C: balanced (bias-free) strings -- fixed-yield "
        "pipelined cycle times (normal random-walk discrepancy, "
        "sigma_pair = 0.5 ns)");
    Table c("TAB-VII C: yield table",
            {"n", "cycle @50% (ns)", "cycle @90% (ns)",
             "cycle @99% (ns)", "MC p90 over 400 chips (ns)"});
    std::vector<double> cns, c90;
    for (int n : {256, 1024, 4096, 16384, 65536}) {
        const double t50 = cycleTimeAtYield(balanced, n, 0.5);
        const double t90 = cycleTimeAtYield(balanced, n, 0.9);
        const double t99 = cycleTimeAtYield(balanced, n, 0.99);
        std::string mc = "-";
        if (n <= 4096) {
            Rng chip_rng = rng.deriveStream(5000 +
                                            static_cast<unsigned>(n));
            const SampleSet cycles =
                sampleChipCycleTimes(balanced, n, 400, chip_rng);
            mc = Table::fixed(cycles.quantile(0.9), 0);
        }
        c.addRow({Table::integer(n), Table::fixed(t50, 0),
                  Table::fixed(t90, 0), Table::fixed(t99, 0), mc});
        cns.push_back(n);
        c90.push_back(t90 - 2.0 * balanced.minPulseWidth);
    }
    emitTable(c, opts);
    bench::printGrowth("90%-yield cycle (minus pulse floor)", cns, c90);

    // Part D: desim validation.
    bench::headline(
        "TAB-VII D: discrete-event validation (drive a pulse train "
        "through the simulated string; bisect the minimum period)");
    Table d("TAB-VII D: analytic vs desim",
            {"n", "analytic min period (ns)", "desim min period (ns)",
             "runs at 1.2x analytic", "fails at 0.5x analytic"});
    for (int n : {32, 64, 128, 256}) {
        const InverterString s(
            n, nmos, rng.deriveStream(9000 + static_cast<unsigned>(n)));
        const double analytic = s.pipelinedCycleAnalytic();
        const double measured = s.minPipelinedPeriod(8, 0.5);
        d.addRow({Table::integer(n), Table::fixed(analytic, 1),
                  Table::fixed(measured, 1),
                  s.runsAtPeriod(analytic * 1.2, 8) ? "yes" : "NO",
                  !s.runsAtPeriod(analytic * 0.5, 8) ? "yes" : "NO"});
    }
    emitTable(d, opts);
    std::printf("expected: desim minimum periods track the analytic "
                "model (desim checks the string's far end; the "
                "analytic bound polices every prefix, so it is an "
                "upper bound).\n");
    return 0;
}
