/**
 * @file
 * THM6 -- the general lower bound: sigma = Omega(W(N)) for COMM graphs
 * of minimum bisection width W (Theorem 6).
 *
 * Per topology: the measured/known bisection width, the Theorem 6
 * bound, and the best skew achieved over our tree builders. Graphs
 * with O(1) bisection width (paths, rings, trees) admit bounded-skew
 * clock trees; graphs with W = Omega(n) (meshes, tori, hex arrays) do
 * not.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "graph/bisection.hh"
#include "layout/generators.hh"
#include "treemachine/htree_machine.hh"

namespace
{

using namespace vsync;

/** Best achieved sigma over our builders for an arbitrary layout. */
double
bestSigma(const layout::Layout &l, double beta, Rng &rng)
{
    double best = core::instanceSkewLowerBound(
        l, clocktree::buildRecursiveBisection(l), beta);
    for (int trial = 0; trial < 4; ++trial) {
        best = std::min(best,
                        core::instanceSkewLowerBound(
                            l, clocktree::buildRandomTree(l, rng),
                            beta));
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xf168;
    const double beta = 0.05;

    bench::headline(
        "THM6: bisection width vs achievable skew across topologies "
        "(beta = 0.05; width exact for <= 20 nodes, Kernighan-Lin "
        "above)");

    Table table("THM6 general graphs",
                {"graph", "cells", "bisection W", "thm6 bound (ns)",
                 "best sigma (ns)", "spine sigma (ns)"});

    Rng rng(seed);

    // 1-D structures: W = O(1), spine achieves O(1) skew. The width is
    // computed exactly for small instances; it is 1 for every path
    // (cut the middle link), so larger rows reuse that value.
    for (int n : {16, 64, 256}) {
        const graph::Topology t = graph::linearArray(n);
        const layout::Layout l = layout::linearLayout(n);
        std::size_t width = 1;
        if (n <= 20)
            width = graph::minimumBisection(t.graph, rng).cutWidth;
        const double spine_sigma = core::instanceSkewLowerBound(
            l, clocktree::buildSpine(l), beta);
        table.addRow(
            {t.name, Table::integer(n),
             Table::integer(static_cast<long long>(width)),
             Table::num(core::theorem6Bound(
                 l.size(), static_cast<double>(width), beta)),
             Table::num(std::min(spine_sigma,
                                 bestSigma(l, beta, rng))),
             Table::num(spine_sigma)});
    }

    // Complete binary trees: W = 1 (cut one root edge); the H-tree
    // machine layout plus clock-along-data-paths keeps skew bounded by
    // the longest tree edge, O(sqrt N) -- and Theorem 6 only demands
    // Omega(1).
    for (int levels : {4, 6, 8}) {
        const auto tm = treemachine::buildHTreeMachine(levels);
        const auto clk = treemachine::buildClockAlongDataPaths(tm);
        const double sigma =
            core::instanceSkewLowerBound(tm.layout, clk, beta);
        table.addRow(
            {csprintf("btree-%d", levels),
             Table::integer(static_cast<long long>(tm.layout.size())),
             "1",
             Table::num(core::theorem6Bound(tm.layout.size(), 1.0,
                                            beta)),
             Table::num(sigma), "-"});
    }

    // 2-D structures: W = Theta(n) forces sigma = Omega(n).
    for (int n : {8, 16, 24}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const double best = std::min(
            bestSigma(l, beta, rng),
            core::instanceSkewLowerBound(
                l, clocktree::buildHTreeGrid(l, n, n), beta));
        table.addRow(
            {csprintf("mesh-%dx%d", n, n),
             Table::integer(static_cast<long long>(l.size())),
             csprintf("~%.0f", core::meshCutWidth(n)),
             Table::num(core::theorem6Bound(
                 l.size(), core::meshCutWidth(n), beta)),
             Table::num(best), "-"});
    }
    for (int n : {8, 16}) {
        const layout::Layout l = layout::hexLayout(n, n);
        table.addRow(
            {csprintf("hex-%dx%d", n, n),
             Table::integer(static_cast<long long>(l.size())),
             csprintf(">=%.0f", core::meshCutWidth(n)),
             Table::num(core::theorem6Bound(
                 l.size(), core::meshCutWidth(n), beta)),
             Table::num(bestSigma(l, beta, rng)), "-"});
    }

    // Intermediate and extreme bisection widths: shuffle-exchange
    // (Theta(N / log N)) and hypercubes (N / 2, where the area case of
    // Theorem 6 binds first).
    for (int k : {6, 8, 10}) {
        const graph::Topology t = graph::shuffleExchange(k);
        const layout::Layout l = layout::fromTopology(t);
        const double w =
            static_cast<double>(t.graph.size()) / (4.0 * k);
        table.addRow(
            {t.name,
             Table::integer(static_cast<long long>(l.size())),
             csprintf("~N/4log N=%.0f", w),
             Table::num(core::theorem6Bound(l.size(), w, beta)),
             Table::num(bestSigma(l, beta, rng)), "-"});
    }
    for (int k : {4, 6, 8}) {
        const graph::Topology t = graph::hypercube(k);
        const layout::Layout l = layout::fromTopology(t);
        const double w = static_cast<double>(1 << (k - 1));
        table.addRow(
            {t.name,
             Table::integer(static_cast<long long>(l.size())),
             csprintf("%.0f", w),
             Table::num(core::theorem6Bound(l.size(), w, beta)),
             Table::num(bestSigma(l, beta, rng)), "-"});
    }

    emitTable(table, opts);
    std::printf(
        "expected: paths/rings/trees (W = O(1)) achieve O(1)-ish "
        "sigma; meshes and hex arrays (W = Theta(n)) cannot beat the "
        "Theta(n) bound with any builder -- Theorem 6's dichotomy.\n");
    return 0;
}
