/**
 * @file
 * FIG5 -- folding the array to handle host skew (Fig 5).
 *
 * A 1-D array's interior pairs are fine under the spine clock, but the
 * host talks to both ends. Laid out straight, the array's output end
 * is physically n pitches from the host, so either the output data
 * wire is Theta(n) long (delta grows) or the host's output register
 * must be clocked across a Theta(n) tree path (skew grows). Folding
 * the array in the middle brings the far end back to the host: the
 * host's input register taps the clock at the spine's start and its
 * output register at the spine's returned end -- every synchronised
 * pair, host included, is now a constant tree distance apart.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    const double m = 0.5, eps = 0.05;
    const core::SkewModel model = core::SkewModel::summation(m, eps);

    bench::headline(
        "FIG5: straight vs folded 1-D arrays -- the host interface "
        "(host at the array's left edge; summation model)");

    Table table("FIG5 folded arrays",
                {"n", "layout", "out-cell dist to host (lambda)",
                 "host-out tap s (lambda)", "host-out skew bound (ns)",
                 "interior sigma (ns)"});

    std::vector<double> ns, straight_skew, folded_skew;
    for (int n : {8, 32, 128, 512, 2048}) {
        for (const bool folded : {false, true}) {
            const layout::Layout l = folded
                                         ? layout::foldedLinearLayout(n)
                                         : layout::linearLayout(n);
            const auto tree = clocktree::buildSpine(l);
            const auto report = core::analyzeSkew(l, tree, model);

            // Host sits one pitch left of cell 0. Its OUTPUT register
            // must capture data from cell n-1 using a clock tap
            // physically reachable at the host.
            const geom::Point host{-1.0, 0.0};
            const geom::Point out_cell = l.position(n - 1);
            const Length data_dist = geom::manhattan(host, out_cell);

            // Straight layout: the only clock tap at the host is the
            // root, a tree distance n+1 from cell n-1's tap. Folded:
            // the spine's end returns next to the host, so the output
            // register taps one pitch past cell n-1.
            const NodeId out_node = tree.nodeOfCell(n - 1);
            Length tap_s;
            if (folded) {
                tap_s = 1.0 + data_dist; // extend the chain to the host
            } else {
                tap_s = tree.rootPathLength(out_node); // back to root
            }
            const double host_skew = model.upperBound(tap_s, tap_s);

            table.addRow({Table::integer(n),
                          folded ? "folded" : "straight",
                          Table::num(data_dist), Table::num(tap_s),
                          Table::num(host_skew),
                          Table::num(report.maxSkewUpper)});
            if (folded) {
                folded_skew.push_back(host_skew);
            } else {
                straight_skew.push_back(host_skew);
                ns.push_back(n);
            }
        }
    }
    emitTable(table, opts);
    bench::printGrowth("straight host-out skew", ns, straight_skew);
    bench::printGrowth("folded host-out skew", ns, folded_skew);
    std::printf("expected: interior sigma constant either way "
                "(Theorem 3); the host-side skew bound grows Theta(n) "
                "straight but stays O(1) folded -- the Fig 5 point.\n");
    return 0;
}
