/**
 * @file
 * ABL3 -- breaking assumption A8 (time-invariant clock paths).
 *
 * Pipelined clocking relies on successive events staying correctly
 * spaced along the clock path (A8). We inject per-transition jitter
 * into a buffered spine's delay elements and measure how far the edge
 * spacing at the far cell drifts from the source period (and how many
 * edges are swallowed outright). The hybrid scheme simulated with the
 * same jitter keeps a bounded cycle: its synchronization is local, so
 * A8 is unnecessary -- exactly the Section VI motivation.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "desim/clock_net.hh"
#include "hybrid/network.hh"
#include "hybrid/partition.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xab13;

    const double m = 0.5;
    const Time buffer_delay = 0.2;
    const Time period = 2.0;
    const int n = 64, cycles = 40;

    bench::headline(
        "ABL3: jitter (A8 violation) vs pipelined clocking on a "
        "64-cell spine (period 2 ns) and vs the hybrid scheme on a "
        "12x12 mesh");

    Table table("ABL3 jitter ablation",
                {"jitter amplitude (ns)", "edges delivered (of 40)",
                 "worst spacing error (ns)", "spacing error p50 (ns)",
                 "hybrid cycle (ns)", "hybrid bound (ns)"});

    Rng rng(seed);
    for (double amp : {0.0, 0.1, 0.3, 1.0, 3.0}) {
        // Pipelined spine under jitter.
        desim::Simulator sim;
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        const auto buffered =
            clocktree::BufferedClockTree::insertBuffers(tree, 4.0);
        desim::ClockNet net(
            sim, buffered,
            [&](const clocktree::BufferedSite &site, std::size_t) {
                Time d = m * site.wireFromParent;
                if (site.isBuffer)
                    d += buffer_delay;
                return desim::EdgeDelays::same(d);
            });
        Rng jitter_rng = rng.deriveStream(
            static_cast<std::uint64_t>(amp * 1000.0));
        if (amp > 0.0) {
            auto *jr = &jitter_rng;
            net.setJitter(
                [jr, amp]() { return jr->uniform(0.0, amp); });
        }
        net.drive(period, cycles);
        const auto &arr = net.risingArrivals(tree.nodeOfCell(n - 1));
        SampleSet spacing_err;
        for (std::size_t k = 1; k < arr.size(); ++k)
            spacing_err.add(std::fabs(arr[k] - arr[k - 1] - period));

        // Hybrid with the same per-round jitter.
        hybrid::HybridParams hp;
        hp.localClockPerLambda = 0.1;
        hp.delta = 2.0;
        hp.handshakeWirePerLambda = 0.05;
        hp.handshakeLogic = 0.5;
        hp.jitterAmplitude = amp;
        const layout::Layout mesh = layout::meshLayout(12, 12);
        hybrid::HybridNetwork hn(hybrid::partitionGrid(mesh, 4.0), hp);
        Rng hybrid_rng = rng.deriveStream(
            7000 + static_cast<std::uint64_t>(amp * 1000.0));
        const auto res = hn.simulate(60, amp > 0.0 ? &hybrid_rng
                                                   : nullptr);

        table.addRow(
            {Table::num(amp),
             Table::integer(static_cast<long long>(arr.size())),
             spacing_err.count() ? Table::num(spacing_err.stat().max())
                                 : "-",
             spacing_err.count() ? Table::num(spacing_err.median())
                                 : "-",
             Table::num(res.steadyCycle),
             Table::num(hn.analyticCycleBound() + amp)});
    }
    emitTable(table, opts);
    std::printf(
        "expected: with jitter of the order of the period the "
        "pipelined clock mis-spaces and even swallows edges (fewer "
        "than 40 delivered), while the hybrid cycle only stretches by "
        "at most the jitter amplitude -- without A8 use Section VI's "
        "scheme.\n");
    return 0;
}
