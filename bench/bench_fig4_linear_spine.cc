/**
 * @file
 * FIG4/THM3 -- clocking one-dimensional arrays (Fig 4, Theorem 3).
 *
 * The clock runs along the array: every communicating pair is one
 * pitch apart on CLK, so the summation-model skew -- and with buffered
 * pipelined distribution (A7) the whole period -- is independent of
 * array length. Equipotential distribution of the same tree needs the
 * entire wire settled per event (A6) and degrades linearly. The desim
 * column shows the pipelined clock genuinely carrying many events in
 * flight while delivering exactly one edge per period to the last
 * cell.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuit/clocked_chain.hh"
#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "desim/clock_net.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    const double m = 0.5, eps = 0.05;
    const core::SkewModel model = core::SkewModel::summation(m, eps);
    core::ClockParams params;
    params.alpha = m;
    params.m = m;
    params.eps = eps;
    params.bufferDelay = 0.2;
    params.bufferSpacing = 4.0;
    params.delta = 2.0;

    bench::headline(
        "FIG4/THM3: 1-D array with the clock run along it, summation "
        "model (m = 0.5, eps = 0.05 ns/lambda, delta = 2 ns)");

    Table table("FIG4 spine-clocked linear arrays",
                {"n", "max s (lambda)", "sigma (ns)",
                 "pipelined period (ns)", "equipotential period (ns)",
                 "events in flight"});

    std::vector<double> ns, pipe, equi;
    for (int n : {8, 32, 128, 512, 2048, 8192}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        const auto report = core::analyzeSkew(l, tree, model);
        const auto p = core::clockPeriod(report, tree, params,
                                         core::ClockingMode::Pipelined);
        const auto e = core::clockPeriod(
            report, tree, params, core::ClockingMode::Equipotential);

        // Desim: drive the buffered spine at the pipelined period and
        // count concurrent events between root and far end.
        int in_flight = 0;
        if (n <= 2048) {
            desim::Simulator sim;
            const auto buffered =
                clocktree::BufferedClockTree::insertBuffers(
                    tree, params.bufferSpacing);
            desim::ClockNet net(
                sim, buffered,
                [&](const clocktree::BufferedSite &site, std::size_t) {
                    Time d = m * site.wireFromParent;
                    if (site.isBuffer)
                        d += params.bufferDelay;
                    return desim::EdgeDelays::same(d);
                });
            net.drive(p.period, 24);
            in_flight =
                net.maxEventsInFlight(tree.nodeOfCell(n - 1));
        }

        table.addRow({Table::integer(n), Table::num(report.maxS),
                      Table::num(report.maxSkewUpper),
                      Table::num(p.period), Table::num(e.period),
                      n <= 2048 ? Table::integer(in_flight) : "-"});
        ns.push_back(n);
        pipe.push_back(p.period);
        equi.push_back(e.period);
    }
    emitTable(table, opts);
    bench::printGrowth("pipelined period", ns, pipe);
    bench::printGrowth("equipotential period", ns, equi);
    std::printf("expected: pipelined period O(1) (Theorem 3), "
                "equipotential period Theta(n) (A6); events in flight "
                "grow with n, confirming several clock events travel "
                "the wire at once.\n");

    // Register-level validation: real desim flip-flops clocked by the
    // simulated buffered spine shift a bit pattern; the bisected
    // minimum workable period is flat in n.
    bench::headline(
        "FIG4/THM3 circuit level: clocked shift chain -- minimum "
        "workable period by bisection over real registers "
        "(setup/hold checked in the simulator)");
    Table chain("FIG4 circuit-level shift chain",
                {"n", "min period (ns)", "events in flight",
                 "pattern intact"});
    circuit::ProcessParams proc = circuit::ProcessParams::cmosGeneric();
    proc.m = 0.1;
    proc.eps = 0.01;
    proc.setupTime = 0.2;
    proc.holdTime = 0.05;
    proc.clkToQ = 0.3;
    proc.bufferSpacing = 8.0;
    Rng rng(opts.seedSet ? opts.seed : 0xf164);
    std::vector<double> cns, cperiods;
    for (int n : {8, 32, 128, 512}) {
        const layout::Layout l = layout::linearLayout(n);
        const auto tree = clocktree::buildSpine(l);
        const Time min_period =
            circuit::minShiftChainPeriod(l, tree, proc, rng, 0.05);
        const auto check = circuit::runClockedShiftChain(
            l, tree, proc, {true, false, true, true}, min_period + 0.1,
            rng.deriveStream(static_cast<unsigned>(n)));
        chain.addRow({Table::integer(n), Table::fixed(min_period, 2),
                      Table::integer(check.clockEventsInFlight),
                      check.correct ? "yes" : "NO"});
        cns.push_back(n);
        cperiods.push_back(min_period);
    }
    emitTable(chain, opts);
    bench::printGrowth("circuit-level min period", cns, cperiods);
    std::printf("expected: the register-level minimum period is flat "
                "in n -- Theorem 3 survives contact with setup/hold "
                "windows and a pipelined clock genuinely in flight.\n");
    return 0;
}
