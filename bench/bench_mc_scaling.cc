/**
 * @file
 * PERF -- thread-scaling of the deterministic Monte-Carlo engine.
 *
 * Two sweeps at 1/2/4/8 threads: realised clock skew over a 64x64 mesh
 * H-tree (Section III wire-delay model) and fabricated 2048-stage
 * inverter-string cycle times (Section VII / Table 7). For every
 * thread count the bench checks the samples are bit-identical to the
 * 1-thread run -- the engine's core guarantee -- and records wall
 * times. Results go to stdout as tables and to BENCH_mc_scaling.json
 * for the perf trajectory; the JSON also records the host's hardware
 * concurrency, without which the speedups are uninterpretable.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "circuit/process.hh"
#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"

namespace
{

using namespace vsync;

/** Wall-clock milliseconds of @p fn, best of @p reps runs. */
template <typename Fn>
double
bestMillis(int reps, const Fn &fn)
{
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

struct ScalingRow
{
    unsigned threads = 1;
    double millis = 0.0;
    double speedup = 1.0;
    bool deterministic = true;
    mc::McResult result;
};

/** Run @p sweep at every thread count; rows[0] is the 1-thread run. */
template <typename Sweep>
std::vector<ScalingRow>
scale(const std::vector<unsigned> &threadCounts, int reps,
      const Sweep &sweep)
{
    std::vector<ScalingRow> rows;
    for (const unsigned tc : threadCounts) {
        ScalingRow row;
        row.threads = tc;
        row.millis = bestMillis(reps, [&] { row.result = sweep(tc); });
        row.deterministic =
            rows.empty() || row.result.bitIdentical(rows.front().result);
        row.speedup = rows.empty() ? 1.0 : rows.front().millis / row.millis;
        rows.push_back(std::move(row));
    }
    return rows;
}

void
emitRows(JsonWriter &json, Table &table, std::size_t trials,
         const std::vector<ScalingRow> &rows)
{
    json.key("rows").beginArray();
    for (const ScalingRow &row : rows) {
        json.beginObject()
            .keyValue("threads", row.threads)
            .keyValue("millis", row.millis)
            .keyValue("trials_per_sec",
                      1000.0 * static_cast<double>(trials) / row.millis)
            .keyValue("speedup_vs_1_thread", row.speedup)
            .keyValue("bit_identical_to_1_thread", row.deterministic)
            .keyValue("mean", row.result.mean())
            .keyValue("stddev", row.result.stddev())
            .keyValue("p99", row.result.quantile(0.99))
            .keyValue("max", row.result.max())
            .endObject();
        table.addRow({Table::integer(row.threads),
                      Table::fixed(row.millis, 1),
                      Table::fixed(row.speedup, 2),
                      row.deterministic ? "yes" : "NO",
                      Table::num(row.result.mean()),
                      Table::num(row.result.quantile(0.99))});
    }
    json.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x5ca1ab1eULL;

    const std::vector<unsigned> threadCounts{1, 2, 4, 8};
    const int reps = 3;

    bench::BenchJson result("mc_scaling", seed);
    JsonWriter &json = result.writer();
    json.keyValue("reps_per_point", reps);

    // --- Sweep 1: skew over a 64x64 mesh clocked by an H-tree. ------
    const int n = 64;
    const std::size_t skewTrials = 256;
    const double m = 0.05, eps = 0.005;
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);

    bench::headline(
        "MC scaling: realised skew over a 64x64 mesh H-tree, 256 "
        "chips per run, identical samples required at every thread "
        "count");
    Table skewTable("MC skew sweep (64x64 mesh)",
                    {"threads", "best ms", "speedup", "bit-identical",
                     "mean skew (ns)", "p99 skew (ns)"});
    const auto skewRows = scale(threadCounts, reps, [&](unsigned tc) {
        mc::McConfig cfg;
        cfg.seed = seed;
        cfg.trials = skewTrials;
        cfg.threads = tc;
        return mc::skewSweep(l, tree, core::WireDelay{m, eps}, cfg);
    });
    json.key("skew_sweep").beginObject()
        .keyValue("layout", "mesh64x64")
        .keyValue("trials", static_cast<std::uint64_t>(skewTrials))
        .keyValue("m", m)
        .keyValue("eps", eps);
    emitRows(json, skewTable, skewTrials, skewRows);
    json.endObject();
    emitTable(skewTable, opts);

    // --- Sweep 2: fabricated 2048-stage inverter strings. -----------
    const int stages = 2048;
    const std::size_t chips = 128;
    const auto process = circuit::ProcessParams::nmos1983();

    bench::headline(
        "MC scaling: minimum pipelined cycle of fabricated 2048-stage "
        "inverter strings (Table 7 workload), 128 chips per run");
    Table yieldTable("MC chip-cycle sweep (2048 stages)",
                     {"threads", "best ms", "speedup", "bit-identical",
                      "mean cycle (ns)", "p99 cycle (ns)"});
    const auto yieldRows = scale(threadCounts, reps, [&](unsigned tc) {
        mc::McConfig cfg;
        cfg.seed = seed;
        cfg.trials = chips;
        cfg.threads = tc;
        cfg.grain = 8;
        return mc::chipCycleSweep(process, stages, cfg);
    });
    json.key("yield_sweep").beginObject()
        .keyValue("stages", stages)
        .keyValue("chips", static_cast<std::uint64_t>(chips))
        .keyValue("process", process.name);
    emitRows(json, yieldTable, chips, yieldRows);
    json.endObject();
    emitTable(yieldTable, opts);

    bool allDeterministic = true;
    for (const auto &rows : {skewRows, yieldRows})
        for (const ScalingRow &row : rows)
            allDeterministic = allDeterministic && row.deterministic;
    json.keyValue("deterministic_across_thread_counts", allDeterministic)
        .keyValue("skew_speedup_at_8_threads", skewRows.back().speedup);

    std::printf(
        "\nwrote BENCH_mc_scaling.json (skew speedup at 8 threads: "
        "%.2fx on a machine with hardware_concurrency %u; samples "
        "%s across thread counts)\n",
        skewRows.back().speedup, std::thread::hardware_concurrency(),
        allDeterministic ? "bit-identical" : "DIVERGED");
    return allDeterministic ? 0 : 1;
}
