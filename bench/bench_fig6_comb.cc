/**
 * @file
 * FIG6 -- comb (serpentine) layouts: any aspect ratio at constant
 * period (Fig 6).
 *
 * A 1-D array need not be a long thin strip: snaking it down and up
 * columns gives any desired bounding-box shape while consecutive cells
 * -- and hence the spine clock's communicating taps -- stay one pitch
 * apart. We fix n and sweep the column height.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    const double m = 0.5, eps = 0.05;
    const core::SkewModel model = core::SkewModel::summation(m, eps);
    core::ClockParams params;
    params.m = m;
    params.eps = eps;
    params.bufferDelay = 0.2;
    params.bufferSpacing = 4.0;
    params.delta = 2.0;

    bench::headline(
        "FIG6: comb layout of a 4096-cell 1-D array -- aspect ratio "
        "sweep at constant clock period (summation model)");

    Table table("FIG6 comb layouts",
                {"column height", "bbox (w x h)", "aspect", "area",
                 "max s (lambda)", "sigma (ns)", "period (ns)"});

    const int n = 4096;
    std::vector<double> aspects, periods;
    for (int h : {1, 4, 16, 64, 256, 1024, 4096}) {
        const layout::Layout l = layout::serpentineLayout(n, h);
        const auto tree = clocktree::buildSpine(l);
        const auto report = core::analyzeSkew(l, tree, model);
        const auto p = core::clockPeriod(report, tree, params,
                                         core::ClockingMode::Pipelined);
        const auto bb = l.boundingBox();
        table.addRow({Table::integer(h),
                      csprintf("%.0f x %.0f", bb.width(), bb.height()),
                      Table::num(bb.aspectRatio()), Table::num(bb.area()),
                      Table::num(report.maxS),
                      Table::num(report.maxSkewUpper),
                      Table::num(p.period)});
        aspects.push_back(bb.aspectRatio());
        periods.push_back(p.period);
    }
    emitTable(table, opts);
    bench::printGrowth("period vs aspect ratio", aspects, periods);
    std::printf("expected: aspect ratio sweeps over three orders of "
                "magnitude while max s stays 1 pitch and the period is "
                "flat -- a 1-D array can be shaped at will "
                "(Section V-A).\n");
    return 0;
}
