/**
 * @file
 * INTRO -- why self-timing seldom helps regular arrays (Section I).
 *
 * Claim 1: regular cells do the same work, so there is little speed
 * variation to exploit. Claim 2: when variation exists, a k-cell path
 * contains a worst-case cell with probability 1 - p^k -> 1, so large
 * arrays run at worst-case speed anyway. We measure self-timed FIR
 * chains whose cells are independently "fast" (probability p) or
 * "slow" and compare the steady cycle against the always-worst-case
 * clocked period.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "mc/sweeps.hh"
#include "systolic/fir.hh"
#include "systolic/selftimed.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    using namespace vsync::systolic;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x1470;

    const Time fast = 1.0, slow = 4.0;

    bench::headline(
        "INTRO: P(worst-case cell on a k-cell path) = 1 - p^k, and the "
        "measured self-timed steady cycle (fast = 1 ns, slow = 4 ns, "
        "40 sampled arrays per row)");

    Table table("INTRO self-timed worst-case paths",
                {"p(fast)", "k", "1 - p^k",
                 "measured P(slow on path)", "mean cycle (ns)",
                 "clocked worst-case (ns)"});

    for (double p : {0.9, 0.99, 0.999}) {
        for (int k : {4, 16, 64, 256}) {
            const SystolicArray arr = buildFir(
                std::vector<Word>(static_cast<std::size_t>(k), 1.0));
            // One Monte-Carlo sweep per (p, k): each trial fabricates
            // an array (bernoulliServiceTimes) and measures its steady
            // self-timed cycle. Trials fan across cores.
            mc::McConfig cfg;
            cfg.seed = seed ^ (static_cast<std::uint64_t>(k) << 10) ^
                       static_cast<std::uint64_t>(p * 1000);
            cfg.trials = 40;
            cfg.grain = 4;
            const mc::McResult cycle =
                mc::selfTimedCycleSweep(arr, 24, p, fast, slow, cfg);

            // Re-derive the per-trial speed draws to count arrays that
            // contained at least one slow cell (same substreams the
            // sweep used, so the count matches what was measured).
            int slow_paths = 0;
            for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
                Rng rng = Rng::forTrial(cfg.seed, trial);
                const auto speed = bernoulliServiceTimes(
                    arr.size(), p, fast, slow, rng);
                for (const Time s : speed)
                    if (s == slow) {
                        ++slow_paths;
                        break;
                    }
            }
            table.addRow(
                {Table::num(p), Table::integer(k),
                 Table::num(worstCasePathProbability(p, k)),
                 Table::num(slow_paths / 40.0),
                 Table::num(cycle.mean()), Table::num(slow)});
        }
    }
    emitTable(table, opts);
    std::printf(
        "expected: the measured fraction of arrays containing a slow "
        "cell tracks 1 - p^k; as k grows the mean self-timed cycle "
        "climbs to the worst-case clocked period -- self-timing buys "
        "little in large regular arrays (Section I), while still "
        "paying its per-cell hardware cost.\n");
    return 0;
}
