/**
 * @file
 * ABL1 -- buffer spacing ablation (assumption A7's "good candidate").
 *
 * The paper suggests spacing clock buffers so that the wire delay
 * between buffers matches a buffer's own delay. Shorter segments give
 * a faster sustainable period tau = b + m*L but cost more buffers and
 * more per-distance latency u = m + b/L; the balanced point L* = b/m
 * puts both within 2x of their optima, minimising the tau*u product.
 * We sweep the spacing for all three process presets.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuit/process.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    using namespace vsync::circuit;
    const auto opts = BenchOptions::parse(argc, argv);

    bench::headline(
        "ABL1: buffer spacing sweep -- period tau = b + m*L vs "
        "latency-per-lambda u = m + b/L (balanced point L* = b/m)");

    for (const ProcessParams &p :
         {ProcessParams::nmos1983(), ProcessParams::cmosGeneric(),
          ProcessParams::gaasFast()}) {
        const double lstar = p.stageDelay / p.m;
        Table table(csprintf("ABL1 %s (b = %.3g ns, m = %.3g "
                             "ns/lambda, L* = %.3g lambda)",
                             p.name.c_str(), p.stageDelay, p.m, lstar),
                    {"spacing (lambda)", "tau (ns)",
                     "latency/lambda (ns)", "buffers/1k-lambda",
                     "tau*u (ns^2/lambda)"});
        double best_product = infinity;
        Length best_spacing = 0.0;
        for (double f : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
            const Length spacing = lstar * f;
            const Time tau = p.stageDelay + p.m * spacing;
            const double u = p.m + p.stageDelay / spacing;
            const double product = tau * u;
            if (product < best_product) {
                best_product = product;
                best_spacing = spacing;
            }
            table.addRow({Table::num(spacing), Table::num(tau),
                          Table::num(u),
                          Table::num(1000.0 / spacing),
                          Table::num(product)});
        }
        emitTable(table, opts);
        std::printf("best tau*u at spacing %.3g lambda (L* = %.3g): "
                    "the paper's wire-delay ~= buffer-delay rule.\n",
                    best_spacing, lstar);
    }
    return 0;
}
