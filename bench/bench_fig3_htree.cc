/**
 * @file
 * FIG3 -- H-tree clock distribution for linear, square and hexagonal
 * arrays (Fig 3, Section IV, Lemma 1 / Theorem 2).
 *
 * For each topology and size: all cells are exactly equidistant from
 * the clock root (max d over communicating pairs = 0), so under the
 * difference model the skew bound is zero and the pipelined clock
 * period is flat in n, while the clock tree costs only a constant
 * factor of wiring area.
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;

void
runTopology(const std::string &name, Table &table,
            std::vector<double> &ns, std::vector<double> &periods,
            int n, const layout::Layout &l,
            const clocktree::ClockTree &tree)
{
    const core::SkewModel model = core::SkewModel::difference(0.5);
    core::ClockParams params;
    params.m = 0.5;
    params.eps = 0.005;
    params.bufferDelay = 0.2;
    params.bufferSpacing = 4.0;
    params.delta = 2.0;

    const auto report = core::analyzeSkew(l, tree, model);
    const auto period = core::clockPeriod(
        report, tree, params, core::ClockingMode::Pipelined);
    const double wire_factor =
        tree.totalWireLength() / l.boundingBox().area();

    table.addRow({name, Table::integer(n),
                  Table::integer(static_cast<long long>(l.size())),
                  Table::num(report.maxD), Table::num(report.maxSkewUpper),
                  Table::num(period.period), Table::num(wire_factor)});
    ns.push_back(static_cast<double>(l.size()));
    periods.push_back(period.period);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    bench::headline(
        "FIG3: H-tree clocking of linear/square/hex arrays under the "
        "difference model (equidistance, flat pipelined period, "
        "constant wiring factor)");

    Table table("FIG3 H-tree layouts",
                {"topology", "n", "cells", "max d (lambda)",
                 "sigma bound (ns)", "period (ns)",
                 "clock wire / area"});

    std::vector<double> lin_ns, lin_periods;
    for (int n : {8, 32, 128, 512, 2048}) {
        const layout::Layout l = layout::linearLayout(n);
        runTopology("linear", table, lin_ns, lin_periods, n, l,
                    clocktree::buildHTreeLinear(l));
    }
    std::vector<double> sq_ns, sq_periods;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);
        runTopology("square", table, sq_ns, sq_periods, n, l,
                    clocktree::buildHTreeGrid(l, n, n));
    }
    std::vector<double> hex_ns, hex_periods;
    for (int n : {4, 8, 16, 32}) {
        const layout::Layout l = layout::hexLayout(n, n);
        runTopology("hex", table, hex_ns, hex_periods, n, l,
                    clocktree::buildHTreeGrid(l, n, n));
    }
    emitTable(table, opts);

    bench::printGrowth("linear period", lin_ns, lin_periods);
    bench::printGrowth("square period", sq_ns, sq_periods);
    bench::printGrowth("hex period", hex_ns, hex_periods);
    std::printf("expected: max d = 0 for all rows (equidistant taps), "
                "so the difference-model sigma is 0 and the period is "
                "O(1) in array size (Theorem 2).\n");
    return 0;
}
