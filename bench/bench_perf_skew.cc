/**
 * @file
 * PERF -- google-benchmark microbenchmarks of clock-tree construction
 * and skew analysis (engineering, not a paper figure).
 */

#include <benchmark/benchmark.h>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"

namespace
{

using namespace vsync;

void
BM_BuildHTree(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    for (auto _ : state) {
        auto tree = clocktree::buildHTreeGrid(l, n, n);
        benchmark::DoNotOptimize(tree.maxRootPathLength());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BuildHTree)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_AnalyzeSkewMesh(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    const auto model = core::SkewModel::summation(0.05, 0.005);
    for (auto _ : state) {
        const auto report = core::analyzeSkew(l, tree, model);
        benchmark::DoNotOptimize(report.maxSkewUpper);
    }
    state.SetItemsProcessed(state.iterations() * l.comm().edgeCount());
}
BENCHMARK(BM_AnalyzeSkewMesh)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_SampleSkewInstance(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    Rng rng(4242);
    for (auto _ : state) {
        const auto inst =
            core::sampleSkewInstance(l, tree, 0.05, 0.005, rng);
        benchmark::DoNotOptimize(inst.maxCommSkew);
    }
    state.SetItemsProcessed(state.iterations() * tree.size());
}
BENCHMARK(BM_SampleSkewInstance)->Arg(8)->Arg(32);

void
BM_SampleMaxCommSkew(benchmark::State &state)
{
    // The engine's per-trial hot path: precomputed pairs, reused
    // scratch, no SkewInstance allocation.
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    tree.warmCaches();
    const auto pairs = core::commNodePairs(l, tree);
    Rng rng(4242);
    std::vector<Time> arrival;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::sampleMaxCommSkew(
            tree, pairs, 0.05, 0.005, rng, arrival));
    }
    state.SetItemsProcessed(state.iterations() * tree.size());
}
BENCHMARK(BM_SampleMaxCommSkew)->Arg(8)->Arg(32);

void
BM_McSkewSweep(benchmark::State &state)
{
    // Whole-sweep throughput vs thread count (64 chips on a 32x32
    // mesh per iteration). Statistics are bit-identical across the
    // thread-count args; only wall time may change.
    const int n = 32;
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    mc::McConfig cfg;
    cfg.seed = 4242;
    cfg.trials = 64;
    cfg.threads = static_cast<unsigned>(state.range(0));
    cfg.grain = 4;
    for (auto _ : state) {
        const auto r = mc::skewSweep(l, tree, 0.05, 0.005, cfg);
        benchmark::DoNotOptimize(r.stat.mean());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(cfg.trials));
}
BENCHMARK(BM_McSkewSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_CircleArgument(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::circleArgumentLowerBound(l, tree, 0.05, 32));
    }
}
BENCHMARK(BM_CircleArgument)->Arg(8)->Arg(16)->Arg(32);

} // namespace
