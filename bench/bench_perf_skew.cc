/**
 * @file
 * PERF -- naive-vs-kernel skew query timings, gated in CI.
 *
 * Two in-run comparisons on a 32x32 mesh clocked by an H-tree, both
 * sides measured in the same process so the gate is meaningful on any
 * host (including 1-CPU CI containers):
 *
 *  - per-query: s(a, b) over every communicating pair via the naive
 *    parent-climb nca (ClockTree::treeDistance) versus the kernel's
 *    Euler-tour sparse table (SkewKernel::treeDistance), with a
 *    results-equal check;
 *  - per-sweep: 64 serial Monte-Carlo chips via the retained naive
 *    path (core::sampleSkewInstance, which re-resolves the scenario
 *    per chip) versus one SkewKernel compile plus
 *    sampleMaxCommSkew per chip, with a bit-identity check (both
 *    draw the same uniforms from the same substreams). The kernel
 *    timing includes its compile, so the speedup is what a sweep
 *    actually sees.
 *
 * Exit status is the CI gate: nonzero when results diverge or the
 * per-sweep serial speedup falls below 2x. Results go to stdout as
 * tables and to BENCH_perf_skew.json for the perf trajectory.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_kernel.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"

namespace
{

using namespace vsync;

constexpr int meshSide = 32;
constexpr std::size_t sweepTrials = 64;
constexpr int reps = 3;
constexpr double minSweepSpeedup = 2.0;
const core::WireDelay delay{0.05, 0.005};

/** Wall-clock milliseconds of @p fn, best of `reps` runs. */
template <typename Fn>
double
bestMillis(const Fn &fn)
{
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x4242ULL;

    const layout::Layout l = layout::meshLayout(meshSide, meshSide);
    const auto tree = clocktree::buildHTreeGrid(l, meshSide, meshSide);
    tree.warmCaches(); // the naive side gets its caches for free
    const core::SkewKernel kernel(l, tree);

    bench::BenchJson result("perf_skew", seed);
    JsonWriter &json = result.writer();
    json.keyValue("layout", "mesh32x32")
        .keyValue("reps_per_point", reps);

    // --- Per-query: naive parent-climb nca vs O(1) sparse table. ----
    const std::size_t pairs = kernel.pairCount();
    const auto &pa = kernel.pairNodesA();
    const auto &pb = kernel.pairNodesB();

    double naive_sum = 0.0, kernel_sum = 0.0;
    const double query_naive_ms = bestMillis([&] {
        naive_sum = 0.0;
        for (std::size_t i = 0; i < pairs; ++i)
            naive_sum += tree.treeDistance(pa[i], pb[i]);
    });
    const double query_kernel_ms = bestMillis([&] {
        kernel_sum = 0.0;
        for (std::size_t i = 0; i < pairs; ++i)
            kernel_sum += kernel.treeDistance(pa[i], pb[i]);
    });
    const bool queries_equal = naive_sum == kernel_sum;
    const double query_speedup =
        query_kernel_ms > 0.0 ? query_naive_ms / query_kernel_ms : 0.0;

    bench::headline("per-query: s(a, b) over all communicating pairs");
    Table queryTable("treeDistance over comm pairs (32x32 H-tree)",
                     {"path", "best ms", "speedup", "sum s"});
    queryTable.addRow({"naive parent-climb", Table::num(query_naive_ms),
                       "1.00", Table::num(naive_sum)});
    queryTable.addRow({"kernel O(1) nca", Table::num(query_kernel_ms),
                       Table::num(query_speedup),
                       Table::num(kernel_sum)});
    emitTable(queryTable, opts);

    json.key("per_query").beginObject()
        .keyValue("pairs", static_cast<std::uint64_t>(pairs))
        .keyValue("naive_best_ms", query_naive_ms)
        .keyValue("kernel_best_ms", query_kernel_ms)
        .keyValue("speedup", query_speedup)
        .keyValue("results_equal", queries_equal)
        .endObject();

    // --- Per-sweep: serial naive sampler vs compile-once kernel. ----
    std::vector<double> naive_samples(sweepTrials, 0.0);
    std::vector<double> kernel_samples(sweepTrials, 0.0);

    const double sweep_naive_ms = bestMillis([&] {
        for (std::size_t i = 0; i < sweepTrials; ++i) {
            Rng rng = Rng::forTrial(seed, i);
            naive_samples[i] =
                core::sampleSkewInstance(l, tree, delay, rng)
                    .maxCommSkew;
        }
    });
    const double sweep_kernel_ms = bestMillis([&] {
        // The compile is inside the timed region: the speedup below is
        // end-to-end for a 64-trial sweep, not just the steady state.
        const core::SkewKernel fresh(l, tree);
        std::vector<Time> scratch;
        for (std::size_t i = 0; i < sweepTrials; ++i) {
            Rng rng = Rng::forTrial(seed, i);
            kernel_samples[i] =
                fresh.sampleMaxCommSkew(delay, rng, scratch);
        }
    });
    const bool sweep_identical = naive_samples == kernel_samples;
    const double sweep_speedup =
        sweep_kernel_ms > 0.0 ? sweep_naive_ms / sweep_kernel_ms : 0.0;

    bench::headline(
        "per-sweep: 64 serial Monte-Carlo chips, naive re-resolve vs "
        "one kernel compile");
    Table sweepTable("serial 64-chip skew sweep (32x32 H-tree)",
                     {"path", "best ms", "speedup", "bit-identical"});
    sweepTable.addRow({"naive sampleSkewInstance",
                       Table::num(sweep_naive_ms), "1.00", "-"});
    sweepTable.addRow({"kernel (compile + sweep)",
                       Table::num(sweep_kernel_ms),
                       Table::num(sweep_speedup),
                       sweep_identical ? "yes" : "NO"});
    emitTable(sweepTable, opts);

    json.key("per_sweep").beginObject()
        .keyValue("trials", static_cast<std::uint64_t>(sweepTrials))
        .keyValue("naive_best_ms", sweep_naive_ms)
        .keyValue("kernel_best_ms", sweep_kernel_ms)
        .keyValue("speedup", sweep_speedup)
        .keyValue("bit_identical", sweep_identical)
        .endObject();

    // --- Kernel stats (the obs gauges, inlined for the artifact). ---
    json.key("kernel").beginObject()
        .keyValue("nodes", static_cast<std::uint64_t>(kernel.nodeCount()))
        .keyValue("pairs", static_cast<std::uint64_t>(kernel.pairCount()))
        .keyValue("build_ms", kernel.buildMillis())
        .keyValue("queries_served", kernel.queriesServed())
        .keyValue("arrival_batches", kernel.arrivalBatches())
        .endObject();

    const bool gate_ok =
        queries_equal && sweep_identical &&
        sweep_speedup >= minSweepSpeedup;
    json.key("gate").beginObject()
        .keyValue("min_sweep_speedup", minSweepSpeedup)
        .keyValue("passed", gate_ok)
        .endObject();

    std::printf("\nwrote BENCH_perf_skew.json (per-query %.2fx, "
                "per-sweep %.2fx vs %.1fx gate; results %s)\n",
                query_speedup, sweep_speedup, minSweepSpeedup,
                queries_equal && sweep_identical ? "identical"
                                                 : "DIVERGED");
    return gate_ok ? 0 : 1;
}
