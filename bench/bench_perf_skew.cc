/**
 * @file
 * PERF -- google-benchmark microbenchmarks of clock-tree construction
 * and skew analysis (engineering, not a paper figure).
 */

#include <benchmark/benchmark.h>

#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "core/skew_analysis.hh"
#include "core/skew_model.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;

void
BM_BuildHTree(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    for (auto _ : state) {
        auto tree = clocktree::buildHTreeGrid(l, n, n);
        benchmark::DoNotOptimize(tree.maxRootPathLength());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BuildHTree)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_AnalyzeSkewMesh(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    const auto model = core::SkewModel::summation(0.05, 0.005);
    for (auto _ : state) {
        const auto report = core::analyzeSkew(l, tree, model);
        benchmark::DoNotOptimize(report.maxSkewUpper);
    }
    state.SetItemsProcessed(state.iterations() * l.comm().edgeCount());
}
BENCHMARK(BM_AnalyzeSkewMesh)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_SampleSkewInstance(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    Rng rng(4242);
    for (auto _ : state) {
        const auto inst =
            core::sampleSkewInstance(l, tree, 0.05, 0.005, rng);
        benchmark::DoNotOptimize(inst.maxCommSkew);
    }
    state.SetItemsProcessed(state.iterations() * tree.size());
}
BENCHMARK(BM_SampleSkewInstance)->Arg(8)->Arg(32);

void
BM_CircleArgument(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const layout::Layout l = layout::meshLayout(n, n);
    const auto tree = clocktree::buildHTreeGrid(l, n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::circleArgumentLowerBound(l, tree, 0.05, 32));
    }
}
BENCHMARK(BM_CircleArgument)->Arg(8)->Arg(16)->Arg(32);

} // namespace
