/**
 * @file
 * SEC8 -- tree machines (Section VIII).
 *
 * H-tree layouts of complete binary trees: O(N) area, O(sqrt N)
 * root-to-leaf wire length, and after inserting the same number of
 * pipeline registers on every edge of a level, bounded segments and a
 * constant pipeline interval. Clock events distributed along the data
 * paths keep each communicating pair's skew proportional to its own
 * edge, and the Bentley-Kung search machine sustains one query per
 * cycle at every size.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/skew_model.hh"
#include "systolic/executor.hh"
#include "treemachine/htree_machine.hh"
#include "treemachine/search.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    using namespace vsync::treemachine;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x5ec8;

    const double m = 0.5;
    const core::SkewModel model = core::SkewModel::summation(m, 0.05);

    bench::headline(
        "SEC8: H-tree tree machines -- area, wire length, pipeline "
        "interval (registers bound segments at 2 lambda; m = 0.5 "
        "ns/lambda, register delay 0.2 ns)");

    Table table("SEC8 tree machine accounting",
                {"levels", "N", "area/N", "root-leaf len / sqrt(N)",
                 "max skew (ns)", "interval (ns)", "latency (ns)",
                 "regs/N"});

    std::vector<double> ns, intervals, areas, latencies;
    for (int levels : {4, 6, 8, 10, 12, 14}) {
        const TreeMachineLayout tm = buildHTreeMachine(levels);
        const double n = static_cast<double>(tm.layout.size());
        const auto stats = insertPipelineRegisters(tm, 2.0, m, 0.2);
        const auto clk = buildClockAlongDataPaths(tm);
        const auto report = core::analyzeSkew(tm.layout, clk, model);

        table.addRow(
            {Table::integer(levels),
             Table::integer(static_cast<long long>(n)),
             Table::num(stats.area / n),
             Table::num(stats.rootToLeafLength / std::sqrt(n)),
             Table::num(report.maxSkewUpper),
             Table::num(stats.pipelineInterval),
             Table::num(stats.rootToLeafLatency),
             Table::num(static_cast<double>(stats.totalRegisters) / n)});
        ns.push_back(n);
        intervals.push_back(stats.pipelineInterval);
        areas.push_back(stats.area);
        latencies.push_back(stats.rootToLeafLatency);
    }
    emitTable(table, opts);
    bench::printGrowth("area", ns, areas);
    bench::printGrowth("pipeline interval", ns, intervals);
    bench::printGrowth("root-leaf latency", ns, latencies);

    // Throughput demonstration: the search machine really answers one
    // query per cycle at any size.
    bench::headline(
        "SEC8: Bentley-Kung search machine -- one query per cycle");
    Table tput("SEC8 search throughput",
               {"levels", "leaves", "latency (cycles)",
                "queries", "results correct"});
    Rng rng(seed);
    for (int levels : {3, 5, 7, 9}) {
        const int leaves = 1 << (levels - 1);
        std::vector<systolic::Word> keys(
            static_cast<std::size_t>(leaves));
        for (auto &k : keys)
            k = std::floor(rng.uniform(0.0, 1000.0));
        std::vector<systolic::Word> qs;
        for (int i = 0; i < 32; ++i)
            qs.push_back(std::floor(rng.uniform(0.0, 1000.0)));
        auto arr = buildSearchMachine(levels, keys);
        const int cycles = 2 * (levels - 1) + 32;
        const auto tr = systolic::runIdeal(arr, cycles,
                                           searchInputs(qs));
        const auto expected =
            searchExpectedOutput(levels, keys, qs, cycles);
        const auto &out = tr.of(0, 2);
        int correct = 0;
        for (int t = 0; t < cycles; ++t)
            correct += std::fabs(out[t] - expected[t]) < 1e-9 ? 1 : 0;
        tput.addRow({Table::integer(levels), Table::integer(leaves),
                     Table::integer(2 * (levels - 1)),
                     Table::integer(32),
                     csprintf("%d/%d", correct, cycles)});
    }
    emitTable(tput, opts);
    std::printf("expected: area O(N), latency O(sqrt N), interval O(1) "
                "(Section VIII); throughput one result per cycle at "
                "every machine size.\n");
    return 0;
}
