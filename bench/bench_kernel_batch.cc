/**
 * @file
 * PERF -- lane-blocked batch skew sampling vs the scalar kernel,
 * gated in CI.
 *
 * One 512-trial Monte-Carlo sweep on a 32x32 mesh clocked by an
 * H-tree, run once through the scalar per-trial path
 * (SkewKernel::sampleMaxCommSkew, one non-inlined uniform() call per
 * tree node) and once per block width W in 1..8 through
 * SkewKernel::sampleMaxCommSkewBlock (bulk per-lane fillUniform, one
 * topological pass carrying W trials). Both sides run in the same
 * process, so the gate is meaningful on any host.
 *
 * Every width is checked for bit-identity against the scalar samples
 * AND for exact draws() accounting -- the blocked path's contract is
 * "scalar results, fewer passes", so a single differing bit or a
 * single extra RNG draw at any width fails the run.
 *
 * Exit status is the CI gate: nonzero when any width diverges (bits
 * or draw counts) or the best width's speedup over scalar falls below
 * 1.5x. Results go to stdout as a table and to BENCH_kernel_batch.json
 * for the perf trajectory; the autotuned width
 * (SkewKernel::blockWidth) is reported alongside the measured best so
 * regressions in the tuner show up in the artifact.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "common/rng.hh"
#include "core/skew_kernel.hh"
#include "layout/generators.hh"

namespace
{

using namespace vsync;

constexpr int meshSide = 32;
constexpr std::size_t sweepTrials = 512;
constexpr std::size_t maxWidth = 8;
constexpr int reps = 3;
constexpr double minBestSpeedup = 1.5;
const core::WireDelay delay{0.05, 0.005};

/** Wall-clock milliseconds of @p fn, best of `reps` runs. */
template <typename Fn>
double
bestMillis(const Fn &fn)
{
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xba7cULL;

    const layout::Layout l = layout::meshLayout(meshSide, meshSide);
    const auto tree = clocktree::buildHTreeGrid(l, meshSide, meshSide);
    const core::SkewKernel kernel(l, tree);
    const std::size_t tuned = kernel.blockWidth();

    bench::BenchJson result("kernel_batch", seed);
    JsonWriter &json = result.writer();
    json.keyValue("layout", "mesh32x32")
        .keyValue("trials", static_cast<std::uint64_t>(sweepTrials))
        .keyValue("reps_per_point", reps);

    // --- Scalar reference: one trial at a time. --------------------
    std::vector<double> ref_samples(sweepTrials, 0.0);
    std::uint64_t ref_draws = 0;
    const double scalar_ms = bestMillis([&] {
        std::vector<Time> scratch;
        ref_draws = 0;
        for (std::size_t i = 0; i < sweepTrials; ++i) {
            Rng rng = Rng::forTrial(seed, i);
            ref_samples[i] =
                kernel.sampleMaxCommSkew(delay, rng, scratch);
            ref_draws += rng.draws();
        }
    });

    // --- Blocked path at every width in the autotune range. --------
    bench::headline("lane-blocked 512-trial sweep vs scalar "
                    "(32x32 H-tree)");
    Table table("sampleMaxCommSkewBlock width sweep",
                {"width", "best ms", "speedup", "bit-identical",
                 "draws-equal"});
    table.addRow({"scalar", Table::num(scalar_ms), "1.00", "-", "-"});

    json.keyValue("scalar_best_ms", scalar_ms);
    json.key("widths").beginArray();

    bool all_identical = true;
    bool all_draws_equal = true;
    double best_ms = -1.0;
    std::size_t best_width = 0;
    std::vector<double> samples(sweepTrials, 0.0);
    for (std::size_t w = 1; w <= maxWidth; ++w) {
        std::uint64_t draws = 0;
        const double ms = bestMillis([&] {
            std::vector<Time> scratch;
            std::vector<Rng> lanes;
            draws = 0;
            for (std::size_t i = 0; i < sweepTrials; i += w) {
                const std::size_t cnt =
                    std::min(w, sweepTrials - i);
                lanes.clear();
                for (std::size_t j = 0; j < cnt; ++j)
                    lanes.push_back(Rng::forTrial(seed, i + j));
                kernel.sampleMaxCommSkewBlock(
                    delay, {lanes.data(), cnt},
                    {samples.data() + i, cnt}, scratch);
                for (std::size_t j = 0; j < cnt; ++j)
                    draws += lanes[j].draws();
            }
        });
        const bool identical = samples == ref_samples;
        const bool draws_equal = draws == ref_draws;
        all_identical = all_identical && identical;
        all_draws_equal = all_draws_equal && draws_equal;
        if (best_ms < 0.0 || ms < best_ms) {
            best_ms = ms;
            best_width = w;
        }
        const double speedup = ms > 0.0 ? scalar_ms / ms : 0.0;
        table.addRow({"W=" + std::to_string(w), Table::num(ms),
                      Table::num(speedup), identical ? "yes" : "NO",
                      draws_equal ? "yes" : "NO"});
        json.beginObject()
            .keyValue("width", static_cast<std::uint64_t>(w))
            .keyValue("best_ms", ms)
            .keyValue("speedup", speedup)
            .keyValue("bit_identical", identical)
            .keyValue("draws_equal", draws_equal)
            .endObject();
    }
    json.endArray();
    emitTable(table, opts);

    const double best_speedup =
        best_ms > 0.0 ? scalar_ms / best_ms : 0.0;
    json.keyValue("best_width", static_cast<std::uint64_t>(best_width))
        .keyValue("best_speedup", best_speedup)
        .keyValue("autotuned_width",
                  static_cast<std::uint64_t>(tuned));

    const bool gate_ok =
        all_identical && all_draws_equal &&
        best_speedup >= minBestSpeedup;
    json.key("gate").beginObject()
        .keyValue("min_best_speedup", minBestSpeedup)
        .keyValue("passed", gate_ok)
        .endObject();

    std::printf("\nwrote BENCH_kernel_batch.json (best W=%zu at "
                "%.2fx vs %.1fx gate, autotuned W=%zu; results %s)\n",
                best_width, best_speedup, minBestSpeedup, tuned,
                all_identical && all_draws_equal ? "identical"
                                                 : "DIVERGED");
    return gate_ok ? 0 : 1;
}
