/**
 * @file
 * FAULT -- tree vs redundant-grid clock distribution under faults.
 *
 * Three experiments on a 16x16 mesh:
 *
 *  1. Exhaustive single-dead-buffer pass with nominal delays: every
 *     buffer stage of the H-tree is killed in turn (each kill must
 *     silence the whole subtree below it -- at least one cell loses
 *     its clock), then every link of the TRIX grid is killed in turn
 *     (median voting must mask every one: all cells clocked, max comm
 *     skew bit-equal to the fault-free run).
 *  2. Graceful-degradation curves: max comm skew and clocked-cell
 *     fraction vs fault rate for H-tree, spine and TRIX grid
 *     (fault::FaultRates::mixed plans, Monte-Carlo over chips), plus
 *     the hybrid handshake network's surviving-element fraction under
 *     severed wires.
 *  3. Determinism: one sweep point re-run at 1, 2 and 8 threads must
 *     produce bit-identical samples (the fault plans and the sweep
 *     both obey the Rng::forTrial contract).
 *
 * Results go to stdout as tables and to BENCH_fault_tolerance.json;
 * the exit code is nonzero if any masking, degradation or determinism
 * property fails.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "fault/injector.hh"
#include "hybrid/partition.hh"
#include "layout/generators.hh"
#include "mc/resilience.hh"

namespace
{

using namespace vsync;

constexpr int rows = 16;
constexpr int cols = 16;

/** Nominal (variation-free) stage delays for the buffered tree. */
desim::ClockNet::DelayFn
nominalTreeDelays(const mc::ResilienceConfig &rc)
{
    return [rc](const clocktree::BufferedSite &site, std::size_t) {
        return desim::EdgeDelays::same(
            site.wireFromParent * rc.delay.m +
            (site.isBuffer ? rc.bufferDelay : 0.0));
    };
}

/** Nominal per-link delay for the TRIX grid. */
fault::TrixGrid::LinkDelayFn
nominalGridDelays(const mc::ResilienceConfig &rc)
{
    return [rc](int, int, int) { return rc.bufferDelay + rc.delay.m; };
}

struct SingleFaultSummary
{
    std::size_t sites = 0;
    std::size_t masked = 0;     // faults with no cell lost
    std::size_t skewExact = 0;  // faults with skew == healthy skew
    double minClockedFraction = 1.0;
    Time healthySkew = 0.0;
    double healthyClockedFraction = 0.0;
};

/** Kill every buffer stage of the H-tree in turn. */
SingleFaultSummary
exhaustiveTreePass(const layout::Layout &l,
                   const clocktree::ClockTree &tree,
                   const clocktree::BufferedClockTree &btree,
                   const mc::ResilienceConfig &rc)
{
    const auto delay_of = nominalTreeDelays(rc);
    SingleFaultSummary s;
    const fault::DistributionOutcome healthy =
        fault::simulateTreeUnderFaults(l, tree, btree, delay_of,
                                       fault::FaultPlan());
    s.healthySkew = healthy.maxCommSkew;
    s.healthyClockedFraction = healthy.clockedFraction;
    s.sites = fault::universeOf(btree).bufferSites;
    for (std::size_t e = 0; e < s.sites; ++e) {
        const fault::DistributionOutcome out =
            fault::simulateTreeUnderFaults(
                l, tree, btree, delay_of,
                fault::FaultPlan::singleDeadBuffer(e));
        s.masked += out.clockedFraction >= 1.0;
        s.skewExact += out.maxCommSkew == healthy.maxCommSkew;
        s.minClockedFraction =
            std::min(s.minClockedFraction, out.clockedFraction);
    }
    return s;
}

/** Kill every link of the TRIX grid in turn. */
SingleFaultSummary
exhaustiveGridPass(const layout::Layout &l, const mc::ResilienceConfig &rc)
{
    const auto delay_of = nominalGridDelays(rc);
    SingleFaultSummary s;
    const fault::DistributionOutcome healthy =
        fault::simulateGridUnderFaults(l, rows, cols, delay_of,
                                       fault::FaultPlan());
    s.healthySkew = healthy.maxCommSkew;
    s.healthyClockedFraction = healthy.clockedFraction;
    s.sites = fault::TrixGrid::universe(rows, cols).bufferSites;
    for (std::size_t link = 0; link < s.sites; ++link) {
        const fault::DistributionOutcome out =
            fault::simulateGridUnderFaults(
                l, rows, cols, delay_of,
                fault::FaultPlan::singleDeadBuffer(link));
        const bool all_clocked = out.clockedFraction >= 1.0;
        s.masked += all_clocked;
        s.skewExact += all_clocked &&
                       out.maxCommSkew == healthy.maxCommSkew;
        s.minClockedFraction =
            std::min(s.minClockedFraction, out.clockedFraction);
    }
    return s;
}

void
emitCurve(JsonWriter &json, Table &table, const std::string &kind,
          const std::vector<mc::ResiliencePoint> &curve)
{
    json.beginObject().keyValue("distribution", kind);
    json.key("points").beginArray();
    for (const mc::ResiliencePoint &p : curve) {
        json.beginObject()
            .keyValue("fault_rate", p.faultRate)
            .keyValue("mean_faults_per_chip", p.meanFaults)
            .keyValue("max_comm_skew_mean", p.maxCommSkew.mean())
            .keyValue("max_comm_skew_p99", p.maxCommSkew.quantile(0.99))
            .keyValue("max_comm_skew_max", p.maxCommSkew.max())
            .keyValue("clocked_fraction_mean", p.clockedFraction.mean())
            .keyValue("clocked_fraction_min", p.clockedFraction.min())
            .endObject();
        table.addRow({kind, Table::num(p.faultRate),
                      Table::fixed(p.meanFaults, 1),
                      Table::num(p.maxCommSkew.mean()),
                      Table::num(p.maxCommSkew.max()),
                      Table::fixed(p.clockedFraction.mean(), 4),
                      Table::fixed(p.clockedFraction.min(), 4)});
    }
    json.endArray().endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xfa017ULL;

    const layout::Layout l = layout::meshLayout(rows, cols);
    const mc::ResilienceConfig rc;
    const auto tree = clocktree::buildHTreeGrid(l, rows, cols);
    const auto btree =
        clocktree::BufferedClockTree::insertBuffers(tree,
                                                    rc.bufferSpacing);

    bench::BenchJson result("fault_tolerance", seed);
    JsonWriter &json = result.writer();
    json.keyValue("array", "mesh16x16")
        .keyValue("m", rc.delay.m)
        .keyValue("eps", rc.delay.eps)
        .keyValue("buffer_delay", rc.bufferDelay)
        .keyValue("buffer_spacing", rc.bufferSpacing);

    // --- 1. Exhaustive single-dead-buffer pass. ---------------------
    bench::headline(
        "Single dead buffer, exhaustive: every H-tree stage kill must "
        "silence its subtree; every TRIX link kill must be masked by "
        "the median vote with zero skew degradation");
    const SingleFaultSummary treePass =
        exhaustiveTreePass(l, tree, btree, rc);
    const SingleFaultSummary gridPass = exhaustiveGridPass(l, rc);

    const bool treeAlwaysLoses = treePass.masked == 0;
    const bool gridAlwaysMasks = gridPass.masked == gridPass.sites;
    const bool gridZeroDegradation =
        gridPass.skewExact == gridPass.sites;

    Table singleTable("single dead buffer (16x16 mesh)",
                      {"distribution", "sites", "masked",
                       "skew-exact", "worst clocked fraction"});
    singleTable.addRow({"htree", Table::integer(treePass.sites),
                        Table::integer(treePass.masked),
                        Table::integer(treePass.skewExact),
                        Table::fixed(treePass.minClockedFraction, 4)});
    singleTable.addRow({"trix-grid", Table::integer(gridPass.sites),
                        Table::integer(gridPass.masked),
                        Table::integer(gridPass.skewExact),
                        Table::fixed(gridPass.minClockedFraction, 4)});
    emitTable(singleTable, opts);

    json.key("single_dead_buffer").beginObject();
    json.key("htree").beginObject()
        .keyValue("buffer_sites",
                  static_cast<std::uint64_t>(treePass.sites))
        .keyValue("faults_masked",
                  static_cast<std::uint64_t>(treePass.masked))
        .keyValue("every_fault_loses_cells", treeAlwaysLoses)
        .keyValue("worst_clocked_fraction", treePass.minClockedFraction)
        .keyValue("healthy_max_comm_skew", treePass.healthySkew)
        .endObject();
    json.key("trix_grid").beginObject()
        .keyValue("links", static_cast<std::uint64_t>(gridPass.sites))
        .keyValue("faults_masked",
                  static_cast<std::uint64_t>(gridPass.masked))
        .keyValue("every_fault_masked", gridAlwaysMasks)
        .keyValue("zero_skew_degradation", gridZeroDegradation)
        .keyValue("worst_clocked_fraction", gridPass.minClockedFraction)
        .keyValue("healthy_max_comm_skew", gridPass.healthySkew)
        .endObject();
    json.endObject();

    // --- 2. Graceful-degradation curves. ----------------------------
    const std::vector<double> rates{0.0, 0.005, 0.02, 0.05};
    mc::McConfig cfg;
    cfg.seed = seed;
    cfg.trials = 64;

    bench::headline(
        "Graceful degradation: mixed fault plans at increasing rates, "
        "64 chips per point");
    Table curveTable("degradation curves (16x16 mesh, 64 chips/point)",
                     {"distribution", "fault rate", "faults/chip",
                      "mean max skew", "worst max skew",
                      "mean clocked", "worst clocked"});
    json.key("degradation_curves").beginArray();
    std::vector<std::vector<mc::ResiliencePoint>> curves;
    for (const mc::DistributionKind kind :
         {mc::DistributionKind::HTree, mc::DistributionKind::Spine,
          mc::DistributionKind::TrixGrid}) {
        curves.push_back(mc::degradationCurve(l, rows, cols, kind,
                                              rates, rc, cfg));
        emitCurve(json, curveTable,
                  mc::distributionKindName(kind), curves.back());
    }
    json.endArray();
    emitTable(curveTable, opts);

    // Monotone sanity on the means: more faults never clock more cells.
    bool degradationMonotone = true;
    for (const auto &curve : curves)
        for (std::size_t i = 1; i < curve.size(); ++i)
            degradationMonotone =
                degradationMonotone &&
                curve[i].clockedFraction.mean() <=
                    curve[i - 1].clockedFraction.mean() + 1e-12;

    // The grid must hold more of the array clocked than the tree at
    // every nonzero rate (the redundancy has to buy something).
    bool gridBeatsTree = true;
    for (std::size_t i = 1; i < rates.size(); ++i)
        gridBeatsTree = gridBeatsTree &&
                        curves[2][i].clockedFraction.mean() >=
                            curves[0][i].clockedFraction.mean();

    // --- Hybrid survival under severed handshake wires. -------------
    const hybrid::Partition part = hybrid::partitionGrid(l, 4.0);
    const hybrid::HybridNetwork net(part, hybrid::HybridParams{});
    Table hybridTable("hybrid survival (severed wires, 64 runs/point)",
                      {"fault rate", "mean surviving fraction",
                       "worst surviving fraction"});
    json.key("hybrid_survival").beginObject()
        .keyValue("elements", part.elementCount);
    json.key("points").beginArray();
    for (const double rate : rates) {
        const mc::McResult survival =
            mc::hybridSurvivalSweep(net, rate, 32, cfg);
        json.beginObject()
            .keyValue("fault_rate", rate)
            .keyValue("surviving_fraction_mean", survival.mean())
            .keyValue("surviving_fraction_min", survival.min())
            .endObject();
        hybridTable.addRow({Table::num(rate),
                            Table::fixed(survival.mean(), 4),
                            Table::fixed(survival.min(), 4)});
    }
    json.endArray().endObject();
    emitTable(hybridTable, opts);

    // --- 3. Determinism across thread counts. -----------------------
    bool deterministic = true;
    {
        mc::McConfig base = cfg;
        base.trials = 32;
        base.threads = 1;
        const mc::ResiliencePoint ref = mc::resilienceAtRate(
            l, rows, cols, mc::DistributionKind::TrixGrid, 0.02, rc,
            base);
        for (const unsigned tc : {2u, 8u}) {
            mc::McConfig alt = base;
            alt.threads = tc;
            const mc::ResiliencePoint got = mc::resilienceAtRate(
                l, rows, cols, mc::DistributionKind::TrixGrid, 0.02,
                rc, alt);
            deterministic =
                deterministic &&
                got.maxCommSkew.bitIdentical(ref.maxCommSkew) &&
                got.clockedFraction.bitIdentical(ref.clockedFraction);
        }
    }

    const bool ok = treeAlwaysLoses && gridAlwaysMasks &&
                    gridZeroDegradation && degradationMonotone &&
                    gridBeatsTree && deterministic;
    json.keyValue("degradation_monotone", degradationMonotone)
        .keyValue("grid_clocked_fraction_beats_tree", gridBeatsTree)
        .keyValue("bit_identical_across_thread_counts", deterministic)
        .keyValue("all_properties_hold", ok);

    std::printf(
        "\nwrote BENCH_fault_tolerance.json (tree lost cells on "
        "%zu/%zu single faults, grid masked %zu/%zu with %s skew "
        "degradation; sweeps %s across 1/2/8 threads)\n",
        treePass.sites - treePass.masked, treePass.sites,
        gridPass.masked, gridPass.sites,
        gridZeroDegradation ? "zero" : "NONZERO",
        deterministic ? "bit-identical" : "DIVERGED");
    if (!ok)
        std::printf("PROPERTY FAILURE: see "
                    "BENCH_fault_tolerance.json\n");
    return ok ? 0 : 1;
}
