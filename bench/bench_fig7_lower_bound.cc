/**
 * @file
 * FIG7 -- the two-dimensional lower bound (Section V-B, Fig 7).
 *
 * No clock tree keeps an n x n array's communicating-cell skew bounded
 * under the summation model. For each n we pit several tree builders
 * (H-tree, recursive bisection, the per-row spine serpent, and random
 * trees) against the bound: every builder's realisable worst-case skew
 * (beta * max s over communicating pairs, A11) exceeds both the
 * instance-certified circle-argument bound and the Theorem 6 formula,
 * and the best tree's skew still grows linearly in n.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "clocktree/optimize.hh"
#include "common/rng.hh"
#include "core/lower_bound.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xf167;

    const double beta = 0.05; // A11 constant (ns per lambda)

    bench::headline(
        "FIG7: n x n mesh skew lower bound under the summation model "
        "(beta = 0.05 ns/lambda; 'achieved' = beta * max s for each "
        "builder; 'certified' = circle-argument bound on the best "
        "tree; 'thm6' = formula bound valid for EVERY tree)");

    Table table("FIG7 2-D lower bound",
                {"n", "thm6 bound (ns)", "certified (ns)",
                 "htree (ns)", "rbisect (ns)", "serpent (ns)",
                 "best random (ns)", "optimized (ns)", "best/thm6"});

    Rng rng(seed);
    std::vector<double> ns, best_sigmas, certified_series;
    for (int n : {4, 6, 8, 12, 16, 24, 32}) {
        const layout::Layout l = layout::meshLayout(n, n);

        const auto htree = clocktree::buildHTreeGrid(l, n, n);
        const auto rbisect = clocktree::buildRecursiveBisection(l);
        // Serpentine chain over the mesh in boustrophedon order: the
        // 1-D trick applied (illegally) to two dimensions.
        std::vector<CellId> order;
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                const int col = (r % 2 == 0) ? c : n - 1 - c;
                order.push_back(static_cast<CellId>(r * n + col));
            }
        }
        const auto serpent =
            clocktree::buildChain(l, order, {-1.0, 0.0});

        const double s_htree = core::instanceSkewLowerBound(l, htree,
                                                            beta);
        const double s_rb =
            core::instanceSkewLowerBound(l, rbisect, beta);
        const double s_serp =
            core::instanceSkewLowerBound(l, serpent, beta);
        double s_rand = infinity;
        for (int trial = 0; trial < 8; ++trial) {
            const auto rt = clocktree::buildRandomTree(l, rng);
            s_rand = std::min(
                s_rand, core::instanceSkewLowerBound(l, rt, beta));
        }
        // Active search: greedy clustering + regraft local search
        // trying to minimise max s (kept to modest sizes for speed).
        double s_opt = infinity;
        if (n <= 16) {
            const auto opt = clocktree::optimizeTree(l, rng, 200);
            s_opt = beta * opt.finalObjective;
        }
        const double best =
            std::min({s_htree, s_rb, s_serp, s_rand, s_opt});

        const double thm6 =
            core::theorem6Bound(l.size(), core::meshCutWidth(n), beta);
        const double certified =
            core::circleArgumentLowerBound(l, htree, beta, 96);

        table.addRow({Table::integer(n), Table::num(thm6),
                      Table::num(certified), Table::num(s_htree),
                      Table::num(s_rb), Table::num(s_serp),
                      Table::num(s_rand),
                      n <= 16 ? Table::num(s_opt) : "-",
                      Table::num(best / thm6)});
        ns.push_back(n);
        best_sigmas.push_back(best);
        certified_series.push_back(certified);
    }
    emitTable(table, opts);
    bench::printGrowth("best achieved sigma", ns, best_sigmas);
    bench::printGrowth("certified bound", ns, certified_series);
    std::printf("expected: every builder's sigma >= the thm6 bound; "
                "the best tree's sigma and the certified bound both "
                "grow Theta(n) -- no clock tree escapes (Section "
                "V-B).\n");
    return 0;
}
