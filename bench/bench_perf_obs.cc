/**
 * @file
 * PERF -- overhead of the observability subsystem, plus the sample
 * artifacts CI archives (a faulted TRIX-grid VCD and a Chrome trace).
 *
 * The claim under test: instrumented engines pay one predictable branch
 * per notification site when no probe is attached, so compiling the
 * hooks in costs <= 5% even on the hottest workload we have (the
 * pipelined spine clock net of bench_perf_desim). Three configurations
 * are timed on identical work, interleaved rep by rep so drift hits
 * them equally:
 *
 *   baseline  - no probe attached (the default everywhere);
 *   null      - NullSimProbe attached (virtual dispatch to empty
 *               bodies: the enabled-but-idle ceiling);
 *   metrics   - MetricsSimProbe attached (full counters, for scale).
 *
 * The hybrid executor's probe seam is measured the same way. Results
 * go to BENCH_obs_overhead.json; the exit code is nonzero when the
 * disabled-path overhead exceeds the budget. Alongside, the bench
 * writes obs_trix_masking.vcd -- an 8x8 TRIX grid masking a dead
 * mid-array link, viewable in GTKWave -- and obs_trace_sample.json, a
 * Chrome trace of a parallel Monte-Carlo sweep.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/buffering.hh"
#include "clocktree/builders.hh"
#include "desim/clock_net.hh"
#include "fault/injector.hh"
#include "fault/trix_grid.hh"
#include "hybrid/network.hh"
#include "layout/generators.hh"
#include "mc/sweeps.hh"
#include "obs/metrics.hh"
#include "obs/probes.hh"
#include "obs/trace.hh"
#include "obs/vcd.hh"

namespace
{

using namespace vsync;

/** Wall-clock milliseconds of one call to @p fn. */
template <typename Fn>
double
millisOf(const Fn &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** One pipelined-spine run with @p probe attached (may be null). */
std::uint64_t
spineRun(const clocktree::BufferedClockTree &buffered, obs::SimProbe *probe)
{
    desim::Simulator sim;
    sim.setProbe(probe);
    desim::ClockNet net(
        sim, buffered, [](const clocktree::BufferedSite &site, std::size_t) {
            Time d = 0.5 * site.wireFromParent;
            if (site.isBuffer)
                d += 0.2;
            return desim::EdgeDelays::same(d);
        });
    net.drive(2.0, 16);
    return sim.eventsProcessed();
}

struct OverheadRow
{
    std::string config;
    double millis = 0.0;   // best over reps
    double overhead = 0.0; // vs baseline
};

void
emitRows(JsonWriter &json, Table &table, const std::string &key,
         const std::vector<OverheadRow> &rows)
{
    json.key(key).beginArray();
    for (const OverheadRow &row : rows) {
        json.beginObject()
            .keyValue("config", row.config)
            .keyValue("best_ms", row.millis)
            .keyValue("overhead_vs_baseline", row.overhead)
            .endObject();
        table.addRow({key, row.config, Table::fixed(row.millis, 3),
                      Table::fixed(100.0 * row.overhead, 2)});
    }
    json.endArray();
}

/** The faulted-TRIX VCD artifact: a dead link masked by the vote. */
bool
writeTrixVcd(const std::string &path)
{
    const int n = 8;
    desim::Simulator sim;
    fault::TrixGrid grid(sim, n, n, [](int, int, int) { return 1.0; });
    fault::FaultInjector injector(
        sim, fault::FaultPlan::singleDeadBuffer(grid.linkIndex(3, 3, 1)));
    injector.armTrixGrid(grid);

    std::ofstream os(path);
    obs::VcdWriter vcd(os);
    obs::attachTrixGrid(vcd, grid);
    vcd.beginDump();
    grid.pulse();

    bool all_nominal = true;
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            all_nominal = all_nominal &&
                          grid.arrival(r, c) ==
                              fault::TrixGrid::nominalArrival(r, 1.0);
    std::printf("wrote %s (%zu wires, %llu changes; dead link %s)\n",
                path.c_str(), vcd.wireCount(),
                static_cast<unsigned long long>(vcd.changeCount()),
                all_nominal ? "fully masked" : "NOT masked");
    return all_nominal && vcd.changeCount() > 0;
}

/** The Chrome-trace artifact: a traced parallel skew sweep. */
bool
writeTraceSample(const std::string &path, std::uint64_t seed)
{
    obs::Tracer tracer;
    const layout::Layout l = layout::meshLayout(16, 16);
    const auto tree = clocktree::buildHTreeGrid(l, 16, 16);
    const core::SkewKernel kernel(l, tree);

    obs::TracePoolObserver observer(tracer, "trial_chunk");
    ThreadPool pool(4);
    pool.setObserver(&observer);

    mc::McConfig cfg;
    cfg.seed = seed;
    cfg.trials = 512;
    cfg.grain = 8;
    {
        VSYNC_TRACE_SPAN(&tracer, "skew_sweep");
        // The result is deliberately dropped: this bench exercises the
        // tracer, not the sweep statistics.
        static_cast<void>(
            mc::runTrials(pool, cfg, [&](std::uint64_t, Rng &rng) {
                std::vector<Time> arrival;
                return kernel.sampleMaxCommSkew(
                    core::WireDelay{0.05, 0.005}, rng, arrival);
            }));
    }
    pool.setObserver(nullptr);

    std::ofstream os(path);
    tracer.writeChromeJson(os);
    std::printf("wrote %s (%zu events on %zu threads)\n", path.c_str(),
                tracer.eventCount(), tracer.threadCount());
    // How many workers claim chunks is scheduler-dependent (on a 1-CPU
    // host the caller can drain the whole job), so only the span count
    // is gated; per-worker tracks are covered deterministically by
    // test_obs.
    return tracer.eventCount() > 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x0b5e7edULL;
    const double budget = 0.05;

    bench::BenchJson result("obs_overhead", seed);
    JsonWriter &json = result.writer();
    json.keyValue("overhead_budget", budget);

    // --- desim: pipelined spine, bench_perf_desim's hottest shape. ---
    const int n = 512;
    const int reps = 15;
    const layout::Layout l = layout::linearLayout(n);
    const auto tree = clocktree::buildSpine(l);
    const auto buffered =
        clocktree::BufferedClockTree::insertBuffers(tree, 4.0);

    obs::MetricsRegistry reg;
    obs::MetricsSimProbe metricsProbe(reg);
    obs::NullSimProbe nullProbe;

    std::vector<OverheadRow> desimRows{
        {"baseline", -1.0, 0.0},
        {"null_probe", -1.0, 0.0},
        {"metrics_probe", -1.0, 0.0}};
    std::uint64_t events = 0;
    // Interleave configurations within each rep so clock drift and
    // cache state hit all three equally; keep the best (least noisy)
    // time per configuration.
    for (int rep = 0; rep < reps; ++rep) {
        obs::SimProbe *probes[] = {nullptr, &nullProbe, &metricsProbe};
        for (std::size_t i = 0; i < 3; ++i) {
            const double ms = millisOf(
                [&]() { events = spineRun(buffered, probes[i]); });
            if (desimRows[i].millis < 0.0 || ms < desimRows[i].millis)
                desimRows[i].millis = ms;
        }
    }
    for (OverheadRow &row : desimRows)
        row.overhead =
            row.millis / desimRows.front().millis - 1.0;

    // --- hybrid: max-plus recurrence with the exec-probe seam. -------
    const layout::Layout hl = layout::meshLayout(32, 32);
    const hybrid::HybridNetwork net(hybrid::partitionGrid(hl, 4.0),
                                    hybrid::HybridParams{});
    obs::NullExecProbe nullExec;
    obs::MetricsExecProbe metricsExec(reg);
    const int rounds = 256;

    std::vector<OverheadRow> hybridRows{
        {"baseline", -1.0, 0.0},
        {"null_probe", -1.0, 0.0},
        {"metrics_probe", -1.0, 0.0}};
    for (int rep = 0; rep < reps; ++rep) {
        obs::ExecProbe *probes[] = {nullptr, &nullExec, &metricsExec};
        for (std::size_t i = 0; i < 3; ++i) {
            const double ms = millisOf([&]() {
                net.simulate(rounds, nullptr, nullptr, probes[i]);
            });
            if (hybridRows[i].millis < 0.0 || ms < hybridRows[i].millis)
                hybridRows[i].millis = ms;
        }
    }
    for (OverheadRow &row : hybridRows)
        row.overhead =
            row.millis / hybridRows.front().millis - 1.0;

    bench::headline(
        "Observability overhead: pipelined spine clock net (512 sites, "
        "16 cycles) and hybrid max-plus (64 elements, 256 rounds), "
        "best of " +
        std::to_string(reps) + " interleaved reps");
    Table table("probe overhead",
                {"workload", "config", "best ms", "overhead %"});
    json.keyValue("spine_sites", n)
        .keyValue("spine_events_per_run", events)
        .keyValue("reps", reps);
    emitRows(json, table, "desim", desimRows);
    emitRows(json, table, "hybrid", hybridRows);
    emitTable(table, opts);

    // The acceptance gate: the *disabled* configuration (no probe ever
    // attached) is what every non-observability build runs, and the
    // null-probe row bounds the enabled-but-idle cost. Only the
    // null-probe row is budgeted; the metrics row is informational.
    const double worstNull =
        std::max(desimRows[1].overhead, hybridRows[1].overhead);
    const bool ok = worstNull <= budget;

    // --- Sample artifacts for CI. ------------------------------------
    const bool vcd_ok = writeTrixVcd("obs_trix_masking.vcd");
    const bool trace_ok =
        writeTraceSample("obs_trace_sample.json", seed);

    json.keyValue("null_probe_overhead_worst", worstNull)
        .keyValue("within_budget", ok)
        .keyValue("vcd_artifact_ok", vcd_ok)
        .keyValue("trace_artifact_ok", trace_ok);

    std::printf(
        "\nwrote BENCH_obs_overhead.json (worst null-probe overhead "
        "%.2f%% against a %.0f%% budget: %s)\n",
        100.0 * worstNull, 100.0 * budget,
        ok ? "within budget" : "OVER BUDGET");
    return ok && vcd_ok && trace_ok ? 0 : 1;
}
