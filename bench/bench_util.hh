/**
 * @file
 * Shared helpers for the experiment-reproduction binaries.
 */

#ifndef VSYNC_BENCH_BENCH_UTIL_HH
#define VSYNC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "common/fit.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/skew_analysis.hh"

namespace vsync::bench
{

/** Per-cell clock arrival offsets from a sampled instance. */
inline std::vector<Time>
offsetsFromInstance(const core::SkewInstance &inst,
                    const clocktree::ClockTree &tree, std::size_t cells)
{
    std::vector<Time> offsets;
    offsets.reserve(cells);
    for (CellId c = 0; static_cast<std::size_t>(c) < cells; ++c)
        offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);
    return offsets;
}

/** Print a one-line growth-law verdict for a measured series. */
inline void
printGrowth(const std::string &what, const std::vector<double> &ns,
            const std::vector<double> &ys)
{
    const GrowthLaw law = classifyGrowth(ns, ys);
    const PowerFit fit = fitPower(ns, ys);
    std::printf("growth[%s]: %s (power-fit exponent %.2f, R^2 %.3f)\n",
                what.c_str(), growthLawName(law).c_str(), fit.exponent,
                fit.r2);
}

/** Print a headline line above a table. */
inline void
headline(const std::string &text)
{
    std::printf("\n# %s\n", text.c_str());
}

} // namespace vsync::bench

#endif // VSYNC_BENCH_BENCH_UTIL_HH
