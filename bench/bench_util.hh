/**
 * @file
 * Shared helpers for the experiment-reproduction binaries.
 */

#ifndef VSYNC_BENCH_BENCH_UTIL_HH
#define VSYNC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clocktree/clock_tree.hh"
#include "common/fit.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/skew_analysis.hh"

namespace vsync::bench
{

/**
 * A bench's machine-readable result file, BENCH_<name>.json.
 *
 * Owns the stream and the shared preamble every bench used to spell
 * out by hand: the root object, the bench name, the seed and the host
 * block (hardware concurrency and the pool's default thread count,
 * without which reported speedups are uninterpretable). The body is
 * written through writer(); the destructor closes the root object, so
 * scope the instance around all emission.
 */
class BenchJson
{
  public:
    BenchJson(const std::string &bench, std::uint64_t seed)
        : out("BENCH_" + bench + ".json"), json(out)
    {
        json.beginObject()
            .keyValue("bench", bench)
            .keyValue("seed", seed);
        json.key("host").beginObject()
            .keyValue("hardware_concurrency",
                      std::thread::hardware_concurrency())
            .keyValue("default_thread_count", defaultThreadCount())
            .endObject();
    }

    ~BenchJson() { json.endObject(); }

    BenchJson(const BenchJson &) = delete;
    BenchJson &operator=(const BenchJson &) = delete;

    /** The writer positioned inside the root object. */
    JsonWriter &writer() { return json; }

  private:
    std::ofstream out;
    JsonWriter json;
};

/** Per-cell clock arrival offsets from a sampled instance. */
inline std::vector<Time>
offsetsFromInstance(const core::SkewInstance &inst,
                    const clocktree::ClockTree &tree, std::size_t cells)
{
    std::vector<Time> offsets;
    offsets.reserve(cells);
    for (CellId c = 0; static_cast<std::size_t>(c) < cells; ++c)
        offsets.push_back(inst.arrival[tree.nodeOfCell(c)]);
    return offsets;
}

/** Print a one-line growth-law verdict for a measured series. */
inline void
printGrowth(const std::string &what, const std::vector<double> &ns,
            const std::vector<double> &ys)
{
    const GrowthLaw law = classifyGrowth(ns, ys);
    const PowerFit fit = fitPower(ns, ys);
    std::printf("growth[%s]: %s (power-fit exponent %.2f, R^2 %.3f)\n",
                what.c_str(), growthLawName(law).c_str(), fit.exponent,
                fit.r2);
}

/** Print a headline line above a table. */
inline void
headline(const std::string &text)
{
    std::printf("\n# %s\n", text.c_str());
}

} // namespace vsync::bench

#endif // VSYNC_BENCH_BENCH_UTIL_HH
