/**
 * @file
 * PERF -- distributed coordinator scaling over in-process fleets,
 * gated.
 *
 * A mixed skew/resilience batch is run through dist::Coordinator
 * against loopback fleets of 1, 2 and 4 single-threaded
 * ScenarioServer workers, then once more against a fleet of 2 with
 * one worker killed mid-run. Per fleet the bench reports wall time,
 * speedup over the one-worker run and the shard ledger, and writes
 * BENCH_dist_scaling.json.
 *
 * Exit status is the CI gate, nonzero when a distribution invariant
 * breaks:
 *  - bit identity: every outcome, at every fleet size and after the
 *    mid-run kill, must match a direct serve::SweepService run of the
 *    same batch, sample for sample and statistic for statistic;
 *  - exact ledger: every dispatched shard attempt resolves exactly
 *    once (dispatched == completed + superseded + failed and
 *    shards == completed + lost), no shard is lost on a healthy
 *    fleet, and the kill run still completes every shard.
 */

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "dist/coordinator.hh"
#include "layout/generators.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;

const core::WireDelay delay{0.05, 0.005};

/** A fleet of real loopback ScenarioServers, one compute thread each
 * so the scaling curve measures the fleet, not the host's pool. */
struct Fleet
{
    std::vector<std::unique_ptr<net::ScenarioServer>> servers;
    std::vector<dist::WorkerEndpoint> endpoints;
    bool ok = true;

    explicit Fleet(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            net::ServerConfig sc;
            sc.computeThreads = 1;
            auto s = std::make_unique<net::ScenarioServer>(sc);
            ok = ok && s->start();
            endpoints.push_back(
                dist::WorkerEndpoint{"127.0.0.1", s->port()});
            servers.push_back(std::move(s));
        }
    }
};

/** The benchmark batch: both sweep families, three distributions. */
std::vector<net::WireRequest>
makeBatch(std::uint64_t seed)
{
    std::vector<net::WireRequest> batch;
    net::WireRequest rq;
    rq.kind = net::QueryKind::Skew;
    rq.scheme = net::WireScheme::HTree;
    rq.rows = rq.cols = 8;
    rq.seed = seed;
    rq.trials = 12000;
    rq.grain = 250;
    rq.delay = delay;
    batch.push_back(rq); // 48 shards

    rq.kind = net::QueryKind::Resilience;
    rq.scheme = net::WireScheme::HTree;
    rq.rows = rq.cols = 6;
    rq.faultRate = 0.05;
    rq.trials = 6000;
    batch.push_back(rq); // 24 shards
    rq.scheme = net::WireScheme::Trix;
    batch.push_back(rq); // 24 shards
    return batch;
}

/**
 * The local reference: the same batch on an in-process SweepService,
 * scenarios built exactly as ScenarioServer builds them. Owns the
 * layouts and trees the requests borrow.
 */
struct LocalReference
{
    std::vector<std::unique_ptr<layout::Layout>> layouts;
    std::vector<std::unique_ptr<clocktree::ClockTree>> trees;
    std::vector<serve::SweepRequest> batch;
    serve::BatchOutcome out;

    explicit LocalReference(const std::vector<net::WireRequest> &wire)
    {
        for (const net::WireRequest &rq : wire) {
            auto l = std::make_unique<layout::Layout>(
                layout::meshLayout(rq.rows, rq.cols));
            mc::McConfig mcc;
            mcc.seed = rq.seed;
            mcc.trials = rq.trials;
            mcc.grain = rq.grain;
            if (rq.kind == net::QueryKind::Skew) {
                auto t = std::make_unique<clocktree::ClockTree>(
                    rq.scheme == net::WireScheme::Spine
                        ? clocktree::buildSpine(*l)
                        : clocktree::buildHTreeGrid(*l, rq.rows,
                                                    rq.cols));
                serve::SkewRequest s;
                s.layout = l.get();
                s.tree = t.get();
                s.delay = rq.delay;
                s.cfg = mcc;
                batch.emplace_back(s);
                trees.push_back(std::move(t));
            } else {
                serve::ResilienceRequest r;
                r.layout = l.get();
                r.rows = rq.rows;
                r.cols = rq.cols;
                r.kind = rq.scheme == net::WireScheme::Trix
                             ? mc::DistributionKind::TrixGrid
                             : mc::DistributionKind::HTree;
                r.faultRate = rq.faultRate;
                r.rc.delay = rq.delay;
                r.cfg = mcc;
                batch.emplace_back(r);
            }
            layouts.push_back(std::move(l));
        }
        serve::SweepService svc;
        out = svc.run(batch);
    }
};

/** Count bitwise differences between an outcome and the reference. */
std::size_t
mismatches(const serve::RequestOutcome &got,
           const serve::RequestOutcome &want)
{
    std::size_t n = 0;
    n += got.status != want.status;
    n += got.trialsDone != want.trialsDone;
    n += got.trialsRequested != want.trialsRequested;
    const auto diffSeries = [&n](const mc::McResult &g,
                                 const mc::McResult &w) {
        if (g.samples.size() != w.samples.size()) {
            ++n;
            return;
        }
        for (std::size_t i = 0; i < w.samples.size(); ++i)
            n += g.samples[i] != w.samples[i];
        if (!w.samples.empty()) {
            n += g.stat.mean() != w.stat.mean();
            n += g.stat.stddev() != w.stat.stddev();
            n += g.stat.min() != w.stat.min();
            n += g.stat.max() != w.stat.max();
        }
    };
    diffSeries(got.skew, want.skew);
    diffSeries(got.resilience.maxCommSkew, want.resilience.maxCommSkew);
    diffSeries(got.resilience.clockedFraction,
               want.resilience.clockedFraction);
    n += got.resilience.meanFaults != want.resilience.meanFaults;
    n += got.resilience.faultRate != want.resilience.faultRate;
    if (got.faultSamples.size() != want.faultSamples.size()) {
        ++n;
    } else {
        for (std::size_t i = 0; i < want.faultSamples.size(); ++i)
            n += got.faultSamples[i] != want.faultSamples[i];
    }
    return n;
}

std::size_t
batchMismatches(const dist::DistOutcome &out,
                const serve::BatchOutcome &ref)
{
    if (out.outcomes.size() != ref.outcomes.size())
        return 1;
    std::size_t n = 0;
    for (std::size_t r = 0; r < ref.outcomes.size(); ++r)
        n += mismatches(out.outcomes[r], ref.outcomes[r]);
    return n;
}

dist::DistConfig
coordConfig(std::vector<dist::WorkerEndpoint> eps, std::uint64_t seed)
{
    dist::DistConfig cfg;
    cfg.workers = std::move(eps);
    cfg.pool.backoff.baseSeconds = 0.01;
    cfg.pool.backoff.capSeconds = 0.1;
    cfg.pool.seed = seed;
    return cfg;
}

/** Ledger health on a run that must complete every shard. */
bool
ledgerExact(const dist::ShardLedger &lg)
{
    return lg.balanced() && lg.completed == lg.shards && lg.lost == 0;
}

void
emitLedger(JsonWriter &json, const dist::ShardLedger &lg)
{
    json.keyValue("shards", lg.shards)
        .keyValue("dispatched", lg.dispatched)
        .keyValue("completed", lg.completed)
        .keyValue("superseded", lg.superseded)
        .keyValue("failed", lg.failed)
        .keyValue("retried", lg.retried)
        .keyValue("hedged", lg.hedged)
        .keyValue("lost", lg.lost)
        .keyValue("balanced", lg.balanced());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0xd157ULL;

    const std::vector<net::WireRequest> batch = makeBatch(seed);
    const LocalReference ref(batch);
    if (ref.out.deadlineExpired || ref.out.cancelled) {
        std::fprintf(stderr, "local reference run failed\n");
        return 1;
    }

    struct FleetPoint
    {
        unsigned workers = 0;
        dist::DistOutcome out;
        std::size_t diffs = 0;
    };
    std::vector<FleetPoint> points;
    bool identical = true;
    bool ledgerOk = true;

    for (const unsigned n : {1u, 2u, 4u}) {
        Fleet fleet(n);
        if (!fleet.ok) {
            std::fprintf(stderr, "cannot start loopback fleet\n");
            return 1;
        }
        dist::Coordinator coord(
            coordConfig(fleet.endpoints, seed + n));
        FleetPoint pt;
        pt.workers = n;
        pt.out = coord.run(batch);
        pt.diffs = batchMismatches(pt.out, ref.out);
        identical = identical && pt.diffs == 0;
        ledgerOk = ledgerOk && ledgerExact(pt.out.ledger) &&
                   !pt.out.deadlineExpired;
        points.push_back(std::move(pt));
    }

    // Fault-recovery point: fleet of 2, one worker killed mid-run.
    // The coordinator must reassign its shards and still produce the
    // reference bytes with a balanced ledger.
    FleetPoint kill;
    {
        Fleet fleet(2);
        if (!fleet.ok) {
            std::fprintf(stderr, "cannot start loopback fleet\n");
            return 1;
        }
        dist::DistConfig cfg = coordConfig(fleet.endpoints, seed + 9);
        cfg.pool.failureBudget = 2;
        dist::Coordinator coord(cfg);
        const double halfway = points[1].out.wallMs / 2.0;
        std::thread killer([&fleet, halfway] {
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>(halfway));
            fleet.servers[1]->stop();
        });
        kill.workers = 2;
        kill.out = coord.run(batch);
        killer.join();
        kill.diffs = batchMismatches(kill.out, ref.out);
        identical = identical && kill.diffs == 0;
        ledgerOk = ledgerOk && ledgerExact(kill.out.ledger) &&
                   !kill.out.deadlineExpired;
    }
    const bool recovered =
        kill.out.ledger.completed == kill.out.ledger.shards &&
        kill.diffs == 0;

    bench::headline("distributed coordinator: fleet scaling and "
                    "mid-run worker kill, mixed 3-request batch");
    Table table("dist scaling",
                {"workers", "wall ms", "speedup", "shards",
                 "dispatched", "retried", "hedged", "mismatches"});
    const double base = points[0].out.wallMs;
    for (const FleetPoint &pt : points)
        table.addRow(
            {Table::integer(pt.workers), Table::num(pt.out.wallMs),
             Table::num(base / pt.out.wallMs),
             Table::integer(
                 static_cast<long long>(pt.out.ledger.shards)),
             Table::integer(
                 static_cast<long long>(pt.out.ledger.dispatched)),
             Table::integer(
                 static_cast<long long>(pt.out.ledger.retried)),
             Table::integer(
                 static_cast<long long>(pt.out.ledger.hedged)),
             Table::integer(static_cast<long long>(pt.diffs))});
    table.addRow(
        {Table::integer(kill.workers) + " (1 killed)",
         Table::num(kill.out.wallMs), Table::num(base / kill.out.wallMs),
         Table::integer(static_cast<long long>(kill.out.ledger.shards)),
         Table::integer(
             static_cast<long long>(kill.out.ledger.dispatched)),
         Table::integer(
             static_cast<long long>(kill.out.ledger.retried)),
         Table::integer(
             static_cast<long long>(kill.out.ledger.hedged)),
         Table::integer(static_cast<long long>(kill.diffs))});
    emitTable(table, opts);

    bench::BenchJson result("dist_scaling", seed);
    JsonWriter &json = result.writer();
    json.keyValue("requests", static_cast<std::uint64_t>(batch.size()))
        .keyValue("reference_wall_ms", ref.out.wallMs);
    json.key("fleets").beginArray();
    for (const FleetPoint &pt : points) {
        json.beginObject()
            .keyValue("workers", static_cast<std::uint64_t>(pt.workers))
            .keyValue("wall_ms", pt.out.wallMs)
            .keyValue("speedup", base / pt.out.wallMs)
            .keyValue("mismatches",
                      static_cast<std::uint64_t>(pt.diffs));
        emitLedger(json, pt.out.ledger);
        json.endObject();
    }
    json.endArray();
    json.key("worker_kill").beginObject()
        .keyValue("workers", static_cast<std::uint64_t>(kill.workers))
        .keyValue("wall_ms", kill.out.wallMs)
        .keyValue("mismatches", static_cast<std::uint64_t>(kill.diffs))
        .keyValue("recovered", recovered);
    emitLedger(json, kill.out.ledger);
    json.endObject();

    const bool gateOk = identical && ledgerOk && recovered;
    json.key("gate").beginObject()
        .keyValue("bit_identical_outcomes", identical)
        .keyValue("ledger_exact", ledgerOk)
        .keyValue("kill_recovered", recovered)
        .keyValue("passed", gateOk)
        .endObject();

    std::printf("\nwrote BENCH_dist_scaling.json (bit identity %s; "
                "ledger %s; kill recovery %s)\n",
                identical ? "ok" : "BROKEN",
                ledgerOk ? "exact" : "BROKEN",
                recovered ? "ok" : "BROKEN");
    return gateOk ? 0 : 1;
}
