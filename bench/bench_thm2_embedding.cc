/**
 * @file
 * THM2 -- Theorem 2 with the grid-embedding substrate.
 *
 * Any ideally synchronized array of bounded aspect ratio can be clocked
 * at a size-independent period under the difference model. Strongly
 * rectangular grids (the paper's n^(2/3) x n^(1/3) example) are first
 * embedded near-square; we use the interleaved fold (documented
 * substitution for Aleliunas-Rosenberg [1], DESIGN.md section 2) and
 * report its measured area factor and edge dilation alongside the
 * resulting H-tree clock period.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "core/clock_period.hh"
#include "core/skew_model.hh"
#include "layout/embed.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);

    const core::SkewModel model = core::SkewModel::difference(0.5);
    core::ClockParams params;
    params.m = 0.5;
    params.eps = 0.005;
    params.bufferDelay = 0.2;
    params.bufferSpacing = 4.0;
    params.delta = 2.0;

    bench::headline(
        "THM2: rectangular grids embedded near-square, then H-tree "
        "clocked under the difference model (paper's example family: "
        "n^(2/3) x n^(1/3) grids)");

    Table table("THM2 embedding + clocking",
                {"grid", "cells", "folds", "area factor", "dilation",
                 "aspect", "max d", "period (ns)"});

    std::vector<double> ns, periods;
    for (int k : {2, 3, 4, 5, 6}) {
        // rows = 2^k, cols = 2^(2k): cells n = 2^(3k), rows = n^(1/3).
        const int rows = 1 << k;
        const int cols = 1 << (2 * k);
        layout::EmbedStats stats;
        const layout::Layout l =
            layout::embedMeshNearSquare(rows, cols, 2.0, &stats);

        // Build a generic recursive-bisection tree over the embedded
        // placement and equalise leaf depths (Lemma 1).
        auto tree = clocktree::buildRecursiveBisection(l);
        // Equalise: pad every bound node's wire to the max root path.
        Length max_h = 0.0;
        for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c)
            max_h = std::max(max_h,
                             tree.rootPathLength(tree.nodeOfCell(c)));
        for (CellId c = 0; static_cast<std::size_t>(c) < l.size(); ++c) {
            const NodeId v = tree.nodeOfCell(c);
            const Length deficit = max_h - tree.rootPathLength(v);
            if (deficit > 1e-12)
                tree.padWire(v, deficit);
        }

        const auto report = core::analyzeSkew(l, tree, model);
        const auto period = core::clockPeriod(
            report, tree, params, core::ClockingMode::Pipelined);
        table.addRow({csprintf("%dx%d", rows, cols),
                      Table::integer(static_cast<long long>(l.size())),
                      Table::integer(stats.folds),
                      Table::num(stats.areaFactor),
                      Table::num(stats.dilation),
                      Table::num(stats.aspectRatio),
                      Table::num(report.maxD),
                      Table::num(period.period)});
        ns.push_back(static_cast<double>(l.size()));
        periods.push_back(period.period);
    }
    emitTable(table, opts);
    bench::printGrowth("period vs cells", ns, periods);
    std::printf(
        "expected: aspect ratio <= 2 after folding, area factor "
        "bounded, max d = 0 after Lemma 1 equalisation, so the period "
        "is O(1) in cells. Dilation grows ~sqrt(aspect) -- the "
        "documented substitution for the cited O(1)-dilation "
        "embedding; communication delay delta is a model parameter "
        "here, so the theorem's period claim is unaffected.\n");
    return 0;
}
