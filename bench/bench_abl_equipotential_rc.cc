/**
 * @file
 * ABL4 -- equipotential settling physics (assumption A6's floor vs.
 * distributed-RC reality).
 *
 * A6 only asserts tau >= alpha * P (speed of light); a real unbuffered
 * distribution wire settles in Theta(L^2) time (distributed RC). We
 * sweep the spine length for all three process presets and report the
 * linear A6 floor, the RC settling model, and the buffered pipelined
 * alternative: equipotential clocking degrades superlinearly exactly
 * where the paper says buffering + pipelining is the way out.
 */

#include <cstdio>

#include "bench_util.hh"
#include "circuit/elmore.hh"
#include "circuit/process.hh"
#include "clocktree/builders.hh"
#include "layout/generators.hh"

int
main(int argc, char **argv)
{
    using namespace vsync;
    using namespace vsync::circuit;
    const auto opts = BenchOptions::parse(argc, argv);

    bench::headline(
        "ABL4: equipotential settling -- A6 linear floor vs "
        "distributed-RC quadratic vs pipelined buffered tau, for a "
        "clock run of length L");

    for (const ProcessParams &p :
         {ProcessParams::nmos1983(), ProcessParams::cmosGeneric(),
          ProcessParams::gaasFast()}) {
        Table table(
            csprintf("ABL4 %s (alpha = %.3g ns/lambda, rc = %.1e "
                     "ns/lambda^2)",
                     p.name.c_str(), p.alpha, p.rcQuadratic),
            {"L (lambda)", "A6 floor (ns)", "RC settle (ns)",
             "pipelined tau (ns)", "RC / pipelined"});
        std::vector<double> ls, rcs, pipes;
        for (double len : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
            const Time floor = p.alpha * len;
            const Time rc = p.settlingTime(len);
            const Time pipe =
                p.stageDelay + (p.m + p.eps) * p.bufferSpacing;
            table.addRow({Table::num(len), Table::num(floor),
                          Table::num(rc), Table::num(pipe),
                          Table::num(rc / pipe)});
            ls.push_back(len);
            rcs.push_back(rc);
            pipes.push_back(pipe);
        }
        emitTable(table, opts);
        bench::printGrowth(p.name + " RC settle", ls, rcs);
        bench::printGrowth(p.name + " pipelined tau", ls, pipes);
    }
    std::printf(
        "expected: RC settling grows superlinearly (between O(L) and "
        "O(L^2) depending on the rc term), the buffered pipelined tau "
        "is flat; their ratio is the speedup available to pipelined "
        "clocking -- largest where switches are fast and wires slow "
        "(gaas-fast), the regime Section VII names.\n");

    // First-order Elmore analysis of whole unbuffered H-trees: the
    // settle time the flat alpha*P abstraction approximates.
    bench::headline(
        "ABL4b: Elmore delay of unbuffered H-trees over n x n meshes "
        "(r = 1 ohm/lambda, c = 0.1 fF/lambda, 5 fF taps)");
    Table et("ABL4b Elmore equipotential trees",
             {"n", "total cap (pF)", "settle (ns)",
              "intra-tree skew (ns)", "comm skew (ns)"});
    const WireRC rc;
    std::vector<double> ens, settles;
    for (int n : {4, 8, 16, 32, 64}) {
        const layout::Layout l = layout::meshLayout(n, n);
        const auto tree = clocktree::buildHTreeGrid(l, n, n);
        const graph::Graph comm = l.comm();
        const auto rep = elmoreAnalysis(tree, rc, &comm);
        et.addRow({Table::integer(n),
                   Table::num(rep.totalCapacitance / 1000.0),
                   Table::num(rep.maxLeafArrival),
                   Table::num(rep.maxLeafArrival - rep.minLeafArrival),
                   Table::num(rep.maxCommSkew)});
        ens.push_back(n);
        settles.push_back(rep.maxLeafArrival);
    }
    emitTable(et, opts);
    bench::printGrowth("Elmore settle vs mesh side", ens, settles);
    std::printf(
        "expected: the Elmore settle time grows ~quadratically in the "
        "mesh side (area-proportional RC), far above A6's linear "
        "floor; the symmetric H-tree keeps leaf-to-leaf Elmore skew "
        "near zero -- the skew problem under equipotential operation "
        "is the period, not the imbalance.\n");
    return 0;
}
