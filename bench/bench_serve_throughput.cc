/**
 * @file
 * PERF -- cached vs cold batched sweep serving, gated in CI.
 *
 * The serving layer's pitch is that a batch of sweeps against known
 * scenarios should not pay the scenario compile again. This bench
 * measures exactly that, in one process: a batch of skew-sweep
 * requests spanning several mesh/H-tree scenarios is served by a
 * SweepService with a cold ScenarioCache (every kernel compiles) and
 * then served again warm (every kernel hits). Requests are sized so
 * the compile dominates a cold batch -- which is the serving regime
 * the cache exists for: many small queries against a few big
 * scenarios.
 *
 * Exit status is the CI gate: nonzero when the warm batch is not at
 * least 2x faster than the cold one, when any request fails to come
 * back Complete, or when warm results are not bit-identical to cold
 * ones (the cache must change wall-clock only, never numbers).
 * Results go to stdout as tables and to BENCH_serve_throughput.json.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "clocktree/builders.hh"
#include "layout/generators.hh"
#include "serve/sweep_service.hh"

namespace
{

using namespace vsync;

constexpr int reps = 3;
constexpr double minWarmSpeedup = 2.0;
constexpr std::size_t trialsPerRequest = 4;
const int meshSides[] = {24, 28, 32, 36};
const core::WireDelay delay{0.05, 0.005};

/** All requests Complete with every trial done? */
bool
allComplete(const serve::BatchOutcome &out)
{
    for (const auto &o : out.outcomes)
        if (o.status != serve::RequestStatus::Complete ||
            o.trialsDone != o.trialsRequested)
            return false;
    return true;
}

/** Every request's samples bitwise equal across the two runs? */
bool
bitIdentical(const serve::BatchOutcome &a, const serve::BatchOutcome &b)
{
    if (a.outcomes.size() != b.outcomes.size())
        return false;
    for (std::size_t i = 0; i < a.outcomes.size(); ++i)
        if (!a.outcomes[i].skew.bitIdentical(b.outcomes[i].skew))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsync;
    const auto opts = BenchOptions::parse(argc, argv);
    const std::uint64_t seed = opts.seedSet ? opts.seed : 0x5e77eULL;

    // The scenarios outlive every batch; only kernels are at stake.
    std::vector<layout::Layout> layouts;
    std::vector<clocktree::ClockTree> trees;
    for (const int side : meshSides) {
        layouts.push_back(layout::meshLayout(side, side));
        trees.push_back(
            clocktree::buildHTreeGrid(layouts.back(), side, side));
    }

    // Two requests per scenario with different seeds: the in-batch
    // dedup (second request waits on the first's compile) is part of
    // what the cold number measures.
    std::vector<serve::SweepRequest> batch;
    for (std::size_t s = 0; s < layouts.size(); ++s) {
        for (int k = 0; k < 2; ++k) {
            serve::SkewRequest rq;
            rq.layout = &layouts[s];
            rq.tree = &trees[s];
            rq.delay = delay;
            rq.cfg.seed = seed + s * 2 + k;
            rq.cfg.trials = trialsPerRequest;
            rq.cfg.grain = 2;
            batch.push_back(rq);
        }
    }

    double cold_best = -1.0, warm_best = -1.0;
    double compile_ms = 0.0;
    std::uint64_t warm_hits = 0, warm_misses = 0;
    bool complete = true, identical = true;
    for (int r = 0; r < reps; ++r) {
        serve::SweepService svc; // fresh cache: the cold measurement
        const serve::BatchOutcome cold = svc.run(batch);
        complete = complete && allComplete(cold);
        if (cold_best < 0.0 || cold.wallMs < cold_best) {
            cold_best = cold.wallMs;
            compile_ms = svc.cache().compileMillis();
        }
        for (int w = 0; w < 2; ++w) {
            const serve::BatchOutcome warm = svc.run(batch);
            complete = complete && allComplete(warm);
            identical = identical && bitIdentical(cold, warm);
            if (warm_best < 0.0 || warm.wallMs < warm_best)
                warm_best = warm.wallMs;
        }
        warm_hits = svc.cache().hits();
        warm_misses = svc.cache().misses();
    }
    const double speedup =
        warm_best > 0.0 ? cold_best / warm_best : 0.0;

    bench::headline(
        "batched skew serving: cold cache (compile every scenario) vs "
        "warm cache (hit every scenario)");
    Table table("8-request batch over 4 mesh/H-tree scenarios",
                {"cache", "best ms", "speedup", "bit-identical"});
    table.addRow({"cold (fresh service)", Table::num(cold_best), "1.00",
                  "-"});
    table.addRow({"warm (same service)", Table::num(warm_best),
                  Table::num(speedup), identical ? "yes" : "NO"});
    emitTable(table, opts);

    bench::BenchJson result("serve_throughput", seed);
    JsonWriter &json = result.writer();
    json.keyValue("scenarios",
                  static_cast<std::uint64_t>(layouts.size()))
        .keyValue("requests",
                  static_cast<std::uint64_t>(batch.size()))
        .keyValue("trials_per_request",
                  static_cast<std::uint64_t>(trialsPerRequest))
        .keyValue("reps_per_point", reps)
        .keyValue("cold_best_ms", cold_best)
        .keyValue("warm_best_ms", warm_best)
        .keyValue("speedup", speedup)
        .keyValue("compile_ms_cold_best", compile_ms)
        .keyValue("cache_hits_per_rep", warm_hits)
        .keyValue("cache_misses_per_rep", warm_misses)
        .keyValue("all_complete", complete)
        .keyValue("bit_identical", identical);

    const bool gate_ok =
        complete && identical && speedup >= minWarmSpeedup;
    json.key("gate").beginObject()
        .keyValue("min_warm_speedup", minWarmSpeedup)
        .keyValue("passed", gate_ok)
        .endObject();

    std::printf("\nwrote BENCH_serve_throughput.json (warm %.2fx vs "
                "%.1fx gate; results %s)\n",
                speedup, minWarmSpeedup,
                complete && identical ? "identical" : "DIVERGED");
    return gate_ok ? 0 : 1;
}
